package scenario

import (
	"fmt"
	"io"

	"rcbcast/internal/topology"
)

// Named couples a registry name with its scenario and a one-line
// summary for CLI listings.
type Named struct {
	Name     string
	Summary  string
	Scenario Scenario
}

// paperPool is the E3 convention for "Carol respects the paper's
// budget": the Lemma-11 pooled budget with leading constant 1 and every
// device Byzantine (f = 1).
var paperPool = BudgetSpec{ModelC: 1, ModelF: 1}

// named is the ordered scenario registry: every attack the paper
// analyzes (§§2–4), the §4.1 defence, and composite attacks. Scenarios
// omit N, K and Seed — callers scale them (the CLIs fill them from
// flags, the experiments from their sweep configuration).
var named = []Named{
	{"benign", "no adversary — the baseline run",
		Scenario{Adversary: AdversarySpec{Kind: "null"}}},
	{"full-jam", "jam everything until the paper-scale pool drains (Theorem 1)",
		Scenario{Adversary: AdversarySpec{Kind: "full"}, Budget: paperPool}},
	{"random-jam", "jam each slot with probability 0.5",
		Scenario{Adversary: AdversarySpec{Kind: "random", P: 0.5}, Budget: paperPool}},
	{"bursty", "rate-limited bursts of 32 jammed / 32 silent slots (§1.2)",
		Scenario{Adversary: AdversarySpec{Kind: "bursty", Burst: 32, Gap: 32}, Budget: paperPool}},
	{"inform-blocker", "block inform phases while affordable (Lemma 10)",
		Scenario{Adversary: AdversarySpec{Kind: "blocker", Inform: true}, Budget: paperPool}},
	{"inform+prop-blocker", "block inform and propagation phases (Lemma 10)",
		Scenario{Adversary: AdversarySpec{Kind: "blocker", Inform: true, Propagate: true}, Budget: paperPool}},
	{"request-blocker", "block request phases to stall termination (§2.2)",
		Scenario{Adversary: AdversarySpec{Kind: "blocker", Request: true}, Budget: paperPool}},
	{"partition-5%", "strand 5% of the nodes, inform the rest (§2.3)",
		Scenario{Adversary: AdversarySpec{Kind: "partition", Strand: 0.05}}},
	{"nack-spoofer", "forge NACKs so the channel never goes quiet (§2.2)",
		Scenario{Adversary: AdversarySpec{Kind: "spoofer", P: 0.5}, Budget: paperPool}},
	{"data-spoofer", "inject forged copies of m that fail authentication",
		Scenario{Adversary: AdversarySpec{Kind: "data-spoofer", P: 0.25}, Budget: paperPool}},
	{"sweep", "rotate a half-phase jamming window across rounds",
		Scenario{Adversary: AdversarySpec{Kind: "sweep", Fraction: 0.5}, Budget: paperPool}},
	{"greedy-adaptive", "history-driven: jam whichever phase kind hurts most",
		Scenario{Adversary: AdversarySpec{Kind: "greedy"}, Budget: paperPool}},
	{"blocker+spoofer", "composite: phase blocking plus NACK spoofing",
		Scenario{Adversary: AdversarySpec{Kind: "composite", Parts: []AdversarySpec{
			{Kind: "blocker", Inform: true, Propagate: true},
			{Kind: "spoofer", P: 0.3},
		}}, Budget: paperPool}},
	{"jam+spoof", "composite: full jamming plus forged data frames",
		Scenario{Adversary: AdversarySpec{Kind: "composite", Parts: []AdversarySpec{
			{Kind: "full"},
			{Kind: "data-spoofer", P: 0.25},
		}}, Budget: paperPool}},
	{"reactive", "RSSI-sensing jammer hitting exactly the used slots (§4.1)",
		Scenario{Adversary: AdversarySpec{Kind: "reactive"},
			Overrides: Overrides{ExtraRounds: 6}}},
	{"reactive-decoy", "reactive jammer vs the decoy defence, Lemma-19 pool (f = 1/25)",
		Scenario{Adversary: AdversarySpec{Kind: "reactive"}, Decoy: true,
			Budget:    BudgetSpec{ModelC: 8, ModelF: 1.0 / 25},
			Overrides: Overrides{ExtraRounds: 8}}},
	{"budgeted-partition", "stranding attack under the paper's pooled budget, bounded rounds",
		Scenario{Adversary: AdversarySpec{Kind: "partition", Strand: 0.05, Rounds: 4},
			Budget:    BudgetSpec{ModelC: 8, ModelF: 1},
			Overrides: Overrides{ExtraRounds: 4}}},
	{"budgeted-full", "full jammer with the paper's device budgets enforced (C = 8)",
		Scenario{Adversary: AdversarySpec{Kind: "full"},
			Budget: BudgetSpec{ModelC: 8, ModelF: 1, DeviceC: 8}}},
	// Topology scenarios bound their rounds (ApplyTopology's default):
	// on a sparse graph the nodes beyond Alice's k-hop reach hear their
	// neighbors' NACKs forever and never pass the quiet test, so an
	// unbounded run only grinds to the natural round limit (DESIGN.md
	// §9).
	{"grid-wave", "broadcast wave on a lattice: delivery is Alice's k-hop ball (§9 topology layer)",
		Scenario{Topology: topology.Spec{Kind: "grid"},
			Overrides: Overrides{ExtraRounds: SparseTopologyExtraRounds}}},
	{"gilbert-jam", "random-geometric channel (Gilbert graph, r=0.25) under random jamming (E13)",
		Scenario{Topology: topology.Spec{Kind: "gilbert", Radius: 0.25},
			Adversary: AdversarySpec{Kind: "random", P: 0.5}, Budget: paperPool,
			Overrides: Overrides{ExtraRounds: SparseTopologyExtraRounds}}},
}

// All returns the named scenarios in registry order. Entries are deep
// copies: callers may mutate them freely.
func All() []Named {
	out := make([]Named, len(named))
	for i, e := range named {
		e.Scenario.Adversary = e.Scenario.Adversary.clone()
		out[i] = e
	}
	return out
}

// Names returns the registry names in order.
func Names() []string {
	out := make([]string, len(named))
	for i, e := range named {
		out[i] = e.Name
	}
	return out
}

// Lookup returns a deep copy of the named scenario (mutating it cannot
// corrupt the registry). Callers must still set N (and usually K and
// Seed) before running.
func Lookup(name string) (Scenario, bool) {
	for _, e := range named {
		if e.Name == name {
			sc := e.Scenario
			sc.Name = name
			sc.Adversary = sc.Adversary.clone()
			return sc, true
		}
	}
	return Scenario{}, false
}

// WriteList renders the named-scenario registry and the adversary-kind
// registry as the listing both CLIs print for -list-scenarios.
func WriteList(w io.Writer) {
	fmt.Fprintln(w, "named scenarios (-scenario NAME; scale with -n/-k/-seed):")
	for _, e := range named {
		fmt.Fprintf(w, "  %-20s %s\n", e.Name, e.Summary)
	}
	fmt.Fprintln(w, "\nadversary kinds (-adversary KIND[:KNOB=V,...], compose with +):")
	for _, k := range Kinds() {
		knobs := ""
		if k.Knobs != "" {
			knobs = " [" + k.Knobs + "]"
		}
		fmt.Fprintf(w, "  %-14s %s%s\n", k.Name, k.Summary, knobs)
	}
}
