// Package baseline implements the comparison protocols the paper measures
// ε-BROADCAST against in §1 and §1.2:
//
//   - Naive: Alice retransmits every slot and every node listens every slot
//     until it hears m. Each correct device pays Θ(T) against a jammer who
//     spends T — "this yields very poor resource competitiveness since each
//     node spends at least as much as the adversary" (§1.1).
//   - KSY: the King–Saia–Young 2011 "Conflict on a Communication Channel"
//     style protocol as the paper characterizes it: epoch-structured with
//     sender probability decaying so that Alice pays O(T^{φ-1}) ≈ O(T^0.62),
//     but listeners remain always-on and pay Θ(T) — "not load balanced
//     since Alice spends roughly D^0.62 while each correct receiving node
//     spends D" (§1.2).
//
// Both baselines run on the same channel assumptions as the main protocol:
// a single solo transmission in an unjammed slot reaches every listener.
// Because every node behaves identically in these protocols (always
// listening until informed), delivery is a single well-defined slot, and
// the simulation only needs to track Alice's sending schedule against the
// jam schedule.
package baseline

import (
	"math"

	"rcbcast/internal/rng"
	"rcbcast/internal/sampling"
)

// Result reports a baseline execution.
type Result struct {
	// Delivered reports whether m reached the listeners within MaxSlots.
	Delivered bool
	// DeliverySlot is the slot m landed (0-based); valid when Delivered.
	DeliverySlot int64
	// AliceCost counts Alice's transmissions up to and including delivery.
	AliceCost int64
	// NodeCost is each listener's cost (identical across nodes: they
	// listen every slot until delivery).
	NodeCost int64
	// AdversarySpent is the jammer's spend T.
	AdversarySpent int64
	// SlotsSimulated is the horizon actually examined.
	SlotsSimulated int64
}

// GoldenRatio is φ = (1+√5)/2; the KSY sender exponent is φ-1 ≈ 0.618.
var GoldenRatio = (1 + math.Sqrt(5)) / 2

// RunNaive executes the naive protocol against a jammer who jams the first
// jamSlots slots (the spend-as-fast-as-possible schedule, matching what
// FullJam does to the main protocol). Alice transmits in every slot;
// delivery happens in the first unjammed slot. maxSlots caps the horizon.
func RunNaive(jamSlots, maxSlots int64) Result {
	if jamSlots < 0 {
		jamSlots = 0
	}
	res := Result{AdversarySpent: jamSlots, SlotsSimulated: maxSlots}
	delivery := jamSlots // first unjammed slot; Alice sends in all of them
	if delivery >= maxSlots {
		res.AliceCost = maxSlots
		res.NodeCost = maxSlots
		res.AdversarySpent = maxSlots
		return res
	}
	res.Delivered = true
	res.DeliverySlot = delivery
	res.AliceCost = delivery + 1 // she sent in every slot so far
	res.NodeCost = delivery + 1  // every node listened in every slot
	return res
}

// KSYParams tunes the KSY-style baseline.
type KSYParams struct {
	// C scales the sender probability (default 1).
	C float64
	// FirstEpoch is the first epoch index (length 2^FirstEpoch);
	// default 4.
	FirstEpoch int
}

func (p KSYParams) c() float64 {
	if p.C > 0 {
		return p.C
	}
	return 1
}

func (p KSYParams) firstEpoch() int {
	if p.FirstEpoch > 0 {
		return p.FirstEpoch
	}
	return 4
}

// RunKSY executes the KSY-style baseline against the same prefix jammer.
// Epoch j has 2^j slots; within epoch j Alice transmits per-slot with
// probability min(1, c·2^{-(2-φ)j}), so her spend through the epoch that
// outlasts a T-slot jam is O(T^{φ-1}). Listeners are always on. Delivery
// happens at her first transmission in an unjammed slot.
func RunKSY(seed uint64, jamSlots, maxSlots int64, params KSYParams) Result {
	if jamSlots < 0 {
		jamSlots = 0
	}
	res := Result{SlotsSimulated: maxSlots}
	decay := 2 - GoldenRatio // ≈ 0.382
	var slot int64
	for epoch := params.firstEpoch(); slot < maxSlots; epoch++ {
		length := int64(1) << uint(epoch)
		if slot+length > maxSlots {
			length = maxSlots - slot
		}
		p := params.c() * math.Pow(2, -decay*float64(epoch))
		if p > 1 {
			p = 1
		}
		sched := sampling.NewSlotSchedule(
			rng.New(seed, uint64(epoch)), p, int(length))
		for {
			offset, ok := sched.Next()
			if !ok {
				break
			}
			abs := slot + int64(offset)
			res.AliceCost++
			if abs >= jamSlots {
				// First send past the jam: delivered.
				res.Delivered = true
				res.DeliverySlot = abs
				res.NodeCost = abs + 1
				res.AdversarySpent = jamSlots
				return res
			}
		}
		slot += length
	}
	// Not delivered within the horizon.
	res.NodeCost = maxSlots
	res.AdversarySpent = minInt64(jamSlots, maxSlots)
	return res
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
