package sim

import (
	"errors"
	"reflect"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
)

// TestTrialSeedDisjointAcrossBases asserts the property the SplitMix64
// derivation was adopted for: adjacent base seeds produce disjoint
// trial-seed sets, unlike the old affine scheme base*1_000_003+i, where
// base and base+1 collide on every index pair (i, i+1_000_003).
func TestTrialSeedDisjointAcrossBases(t *testing.T) {
	const trials = 200_000
	for _, base := range []uint64{0, 1, 41, 1 << 32} {
		seen := make(map[uint64]int, 2*trials)
		for i := 0; i < trials; i++ {
			seen[TrialSeed(base, i)] = i
		}
		if len(seen) != trials {
			t.Fatalf("base %d: %d collisions within its own trial-seed set", base, trials-len(seen))
		}
		for i := 0; i < trials; i++ {
			if j, ok := seen[TrialSeed(base+1, i)]; ok {
				t.Fatalf("bases %d and %d collide: trial %d vs trial %d", base, base+1, i, j)
			}
		}
	}
}

func TestTrialSeedDiffersByIndex(t *testing.T) {
	if TrialSeed(7, 0) == TrialSeed(7, 1) {
		t.Fatal("adjacent trial indices must derive different seeds")
	}
}

// TestSweepSeedDisjointAcrossPoints asserts the reason SweepSeed exists:
// adjacent sweep points never share trial seeds, no matter how many
// trials each point runs (stride packing like point*100+trial collides
// as soon as trials exceed the stride).
func TestSweepSeedDisjointAcrossPoints(t *testing.T) {
	const trials = 50_000
	seen := make(map[uint64]bool, 2*trials)
	for _, point := range []int{0, 1} {
		for s := 0; s < trials; s++ {
			seed := SweepSeed(1, point, s)
			if seen[seed] {
				t.Fatalf("seed collision at point %d, trial %d", point, s)
			}
			seen[seed] = true
		}
	}
}

func TestMapOrderIndependent(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := Map(1, 100, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{0, 2, 8, 100, 1000} {
		got, err := Map(procs, 100, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("procs=%d: results diverge from sequential run", procs)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { t.Fatal("fn must not run"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
}

// TestMapErrorDeterministic asserts failures are reported for the lowest
// failing index, regardless of which worker hit an error first.
func TestMapErrorDeterministic(t *testing.T) {
	sentinel := errors.New("boom")
	fn := func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, sentinel
		}
		return i, nil
	}
	for _, procs := range []int{1, 8} {
		_, err := Map(procs, 10, fn)
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("procs=%d: want wrapped sentinel, got %v", procs, err)
		}
		if want := "sim: trial 3: boom"; err.Error() != want {
			t.Fatalf("procs=%d: error %q, want %q (lowest index wins)", procs, err.Error(), want)
		}
	}
}

func jamSpecs(n, trials int) []TrialSpec {
	specs := make([]TrialSpec, trials)
	for i := range specs {
		specs[i] = TrialSpec{
			Params:   core.PracticalParams(n, 2),
			Seed:     TrialSeed(1, i),
			Strategy: func() adversary.Strategy { return adversary.FullJam{} },
			Pool:     func() *energy.Pool { return energy.NewPool(1 << 10) },
		}
	}
	return specs
}

// TestRunTrialsMatchesEngineRun pins the runner to the engine: a spec
// produces exactly the Result a direct engine.Run of the same Options
// would.
func TestRunTrialsMatchesEngineRun(t *testing.T) {
	specs := jamSpecs(128, 3)
	got, err := RunTrials(2, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := engine.Run(engine.Options{
			Params:   spec.Params,
			Seed:     spec.Seed,
			Strategy: adversary.FullJam{},
			Pool:     energy.NewPool(1 << 10),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("trial %d diverges from direct engine.Run", i)
		}
	}
}

// TestRunTrialsProcsEquivalence mirrors the engine's Run/RunActors
// equivalence test one layer up: the batch's results are bit-for-bit
// identical however many workers execute it.
func TestRunTrialsProcsEquivalence(t *testing.T) {
	specs := jamSpecs(128, 8)
	want, err := RunTrials(1, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{0, 2, 8} {
		got, err := RunTrials(procs, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("procs=%d: results diverge from procs=1", procs)
		}
	}
}

func TestProcsDefault(t *testing.T) {
	if Procs(0) < 1 || Procs(-3) < 1 {
		t.Fatal("non-positive overrides must resolve to at least one worker")
	}
	if Procs(5) != 5 {
		t.Fatal("positive override must be honored")
	}
}
