package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/topology"
)

var batchTopos = []struct {
	name string
	spec topology.Spec
}{
	{"clique", topology.Spec{}},
	{"grid", topology.Spec{Kind: "grid", Reach: 2}},
	{"gilbert", topology.Spec{Kind: "gilbert", Radius: 0.25}},
}

// batchLaneOptions derives lane `lane`'s Options for a differential
// case: the config's fresh construction (strategies and pools are
// per-run mutable state, so scalar and batch each call mk() themselves)
// with the topology installed and the seed varied per lane.
func batchLaneOptions(mk func() Options, spec topology.Spec, lane int) Options {
	o := mk()
	o.Topology = spec
	o.Seed += uint64(lane) * 7919
	if !spec.IsClique() {
		// Sparse runs at n=192 are slow; a short round window still
		// exercises every phase kind and both kernels identically.
		o.Params.MaxRound = o.Params.StartRound + 2
	}
	return o
}

// TestBatchMatchesScalar is the tentpole oracle: for every behavioural
// config, topology kind, and batch width — including width 1 — each
// lane of RunBatch must produce a Result bit-for-bit identical to the
// scalar engine's for the same Options.
func TestBatchMatchesScalar(t *testing.T) {
	widths := []int{1, 2, 4, 8}
	if testing.Short() {
		widths = []int{1, 8}
	}
	for name, mk := range equivalenceConfigs() {
		for _, tp := range batchTopos {
			for _, width := range widths {
				t.Run(fmt.Sprintf("%s/%s/w%d", name, tp.name, width), func(t *testing.T) {
					scalar := make([]*Result, width)
					for lane := 0; lane < width; lane++ {
						res, err := Run(batchLaneOptions(mk, tp.spec, lane))
						if err != nil {
							t.Fatal(err)
						}
						scalar[lane] = res
					}
					opts := make([]Options, width)
					for lane := range opts {
						opts[lane] = batchLaneOptions(mk, tp.spec, lane)
					}
					batch, err := RunBatch(opts, nil)
					if err != nil {
						t.Fatal(err)
					}
					if len(batch) != width {
						t.Fatalf("got %d results for %d lanes", len(batch), width)
					}
					for lane := range batch {
						if !reflect.DeepEqual(scalar[lane], batch[lane]) {
							t.Fatalf("lane %d diverged:\nscalar: %+v\nbatch:  %+v",
								lane, scalar[lane], batch[lane])
						}
					}
				})
			}
		}
	}
}

// TestBatchScratchReuse pins the scratch discipline: consecutive
// batches on one BatchScratch — including a width change and a second
// pass over the same specs — are byte-identical to fresh-scratch runs,
// and the topology cache actually carries graphs across batches.
func TestBatchScratchReuse(t *testing.T) {
	mkOpts := func(width int, spec topology.Spec) []Options {
		opts := make([]Options, width)
		for lane := range opts {
			params := core.PracticalParams(128, 2)
			if !spec.IsClique() {
				params.MaxRound = params.StartRound + 2
			}
			opts[lane] = Options{
				Params:   params,
				Seed:     uint64(300 + lane),
				Topology: spec,
				Strategy: adversary.FullJam{},
				Pool:     energy.NewPool(1 << 12),
			}
		}
		return opts
	}
	for _, tp := range batchTopos {
		t.Run(tp.name, func(t *testing.T) {
			bs := NewBatchScratch()
			var rounds [][]*Result
			for _, width := range []int{4, 2, 4} {
				got, err := RunBatch(mkOpts(width, tp.spec), bs)
				if err != nil {
					t.Fatal(err)
				}
				rounds = append(rounds, got)
			}
			fresh, err := RunBatch(mkOpts(4, tp.spec), nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, width := range []int{4, 2, 4} {
				for lane := 0; lane < width; lane++ {
					if !reflect.DeepEqual(rounds[i][lane], fresh[lane]) {
						t.Fatalf("pass %d lane %d: reused scratch diverged from fresh", i, lane)
					}
				}
			}
			hits, misses := bs.cache.Stats()
			switch {
			case tp.spec.IsClique():
				// The clique never consults the cache (global fast path).
				if hits+misses != 0 {
					t.Fatalf("clique batches touched the topology cache: %d hits, %d misses", hits, misses)
				}
			case tp.spec.TrialInvariant():
				// One build serves all ten lane-trials across the passes.
				if misses != 1 || hits != 9 {
					t.Fatalf("grid cache stats = (%d hits, %d misses), want (9, 1)", hits, misses)
				}
			default:
				// Gilbert: one build per distinct seed (4), reused on the
				// later passes (2 + 4 hits).
				if misses != 4 || hits != 6 {
					t.Fatalf("gilbert cache stats = (%d hits, %d misses), want (6, 4)", hits, misses)
				}
			}
		})
	}
}

// TestBatchValidation covers the batch API's edges: empty input, lane
// mismatch on each execution-shaping field, and per-lane option errors.
func TestBatchValidation(t *testing.T) {
	res, err := RunBatch(nil, nil)
	if res != nil || err != nil {
		t.Fatalf("empty batch: got (%v, %v)", res, err)
	}
	base := Options{Params: core.PracticalParams(64, 2), Seed: 1}
	bad := base
	bad.Params.K = 3
	if _, err := RunBatch([]Options{base, bad}, nil); !errors.Is(err, errBatchMismatch) {
		t.Fatalf("params mismatch: %v", err)
	}
	bad = base
	bad.Topology = topology.Spec{Kind: "grid"}
	if _, err := RunBatch([]Options{base, bad}, nil); !errors.Is(err, errBatchMismatch) {
		t.Fatalf("topology mismatch: %v", err)
	}
	bad = base
	bad.MaxPhaseSlots = 9999
	if _, err := RunBatch([]Options{base, bad}, nil); !errors.Is(err, errBatchMismatch) {
		t.Fatalf("max-phase-slots mismatch: %v", err)
	}
	invalid := base
	invalid.Params.N = 0
	if _, err := RunBatch([]Options{invalid, invalid}, nil); err == nil {
		t.Fatal("invalid lane options must be rejected")
	}
}

// TestBatchContextCancel: a canceled context surfaces as a
// *PartialRunError, exactly like the scalar context path.
func TestBatchContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := make([]Options, 4)
	for lane := range opts {
		opts[lane] = Options{Params: core.PracticalParams(128, 2), Seed: uint64(lane)}
	}
	_, err := RunBatchContext(ctx, opts, nil)
	var pe *PartialRunError
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want *PartialRunError wrapping context.Canceled, got %v", err)
	}
}

// steadyBatch mirrors steadyTrials for the batch kernel: the
// BENCH_ENGINE workload at batch width 8 with everything a sweep hoists
// (options slice, pools, scratch) hoisted out of the loop.
func steadyBatch(spec topology.Spec, fail func(error)) (trial func(), width int) {
	const w = 8
	params := core.PracticalParams(256, 2)
	if !spec.IsClique() {
		params.MaxRound = params.StartRound + 2
	}
	pools := make([]*energy.Pool, w)
	opts := make([]Options, w)
	for lane := range opts {
		pools[lane] = energy.NewPool(1 << 12)
		opts[lane] = Options{
			Params:   params,
			Topology: spec,
			Strategy: adversary.FullJam{},
			Pool:     pools[lane],
		}
	}
	bs := NewBatchScratch()
	seed := uint64(0)
	return func() {
		for lane := range opts {
			pools[lane].Reset(1 << 12)
			opts[lane].Seed = seed
			seed++
		}
		res, err := RunBatch(opts, bs)
		if err != nil {
			fail(err)
		}
		if len(res) != w || res[0].N != 256 {
			fail(errBadResult)
		}
	}, w
}

// TestSteadyStateAllocsBatch extends the allocation gate to the batch
// kernel: a warmed-up batch allocates per lane what a warmed-up scalar
// run allocates per trial (run struct, escaped Options, Result,
// NodeCosts, cost-sort copy) plus the shared results slice — block
// schedules, bitsets, and the topology cache must all recycle.
func TestSteadyStateAllocsBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts; CI gates this test in a separate non-race step")
	}
	for _, tc := range []struct {
		name    string
		spec    topology.Spec
		ceiling float64 // per lane, matching the scalar gate's anatomy
	}{
		{"clique", topology.Spec{}, 16},
		{"grid", topology.Spec{Kind: "grid", Reach: 2}, 24},
		{"gilbert", topology.Spec{Kind: "gilbert", Radius: 0.25}, 24},
	} {
		t.Run(tc.name, func(t *testing.T) {
			trial, width := steadyBatch(tc.spec, func(err error) { t.Fatal(err) })
			for i := 0; i < 8; i++ {
				trial()
			}
			ceiling := tc.ceiling * float64(width)
			if got := testing.AllocsPerRun(10, trial); got > ceiling {
				t.Fatalf("steady-state %s batch allocates %.1f objects/op at width %d, ceiling %v",
					tc.name, got, width, ceiling)
			}
		})
	}
}

// BenchmarkSteadyStateBatch is BenchmarkSteadyState on the batch
// kernel: width-8 batches, scratch warmed before the timer. ns/op is
// per batch (8 trials); compare ns/op/8 against BenchmarkSteadyState.
func BenchmarkSteadyStateBatch(b *testing.B) {
	for _, tc := range steadyKinds {
		b.Run(tc.name, func(b *testing.B) {
			trial, _ := steadyBatch(tc.spec, func(err error) { b.Fatal(err) })
			for i := 0; i < 2; i++ {
				trial()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial()
			}
		})
	}
}
