package engine

import (
	"errors"
	"reflect"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/trace"
)

func benignOpts(n int, seed uint64) Options {
	return Options{
		Params: core.PracticalParams(n, 2),
		Seed:   seed,
	}
}

func TestBenignRunInformsEveryone(t *testing.T) {
	res, err := Run(benignOpts(256, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 256 {
		t.Fatalf("informed = %d/256 without an adversary", res.Informed)
	}
	if !res.Completed {
		t.Fatal("benign run must complete")
	}
	if !res.Alice.Terminated || res.Alice.Dead {
		t.Fatalf("Alice must terminate cleanly: %+v", res.Alice)
	}
	if res.Stranded != 0 || res.Dead != 0 || res.ActiveAtEnd != 0 {
		t.Fatalf("benign run left stranded=%d dead=%d active=%d", res.Stranded, res.Dead, res.ActiveAtEnd)
	}
	if res.AdversarySpent != 0 {
		t.Fatalf("null adversary spent %d", res.AdversarySpent)
	}
	if res.Alice.Cost <= 0 || res.NodeCost.Max <= 0 {
		t.Fatal("costs must be positive")
	}
}

func TestBenignRunIsCheap(t *testing.T) {
	// Without jamming the protocol finishes in its first round, so costs
	// stay polylogarithmic-ish — far below the n^{1/2} budget scale.
	res, err := Run(benignOpts(1024, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != core.PracticalParams(1024, 2).StartRound {
		t.Fatalf("benign run took %d rounds, want the start round", res.Rounds)
	}
	if res.NodeCost.Max > 512 {
		t.Fatalf("node cost %d too high for a benign run", res.NodeCost.Max)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(benignOpts(128, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(benignOpts(128, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Informed != b.Informed || a.SlotsSimulated != b.SlotsSimulated ||
		a.Alice.Cost != b.Alice.Cost || a.NodeCost != b.NodeCost {
		t.Fatalf("same seed must replay identically:\n%+v\n%+v", a, b)
	}
	c, err := Run(benignOpts(128, 43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Alice.Sends == c.Alice.Sends && a.NodeCost.Mean == c.NodeCost.Mean {
		t.Fatal("different seeds should differ somewhere")
	}
}

func TestInvalidParams(t *testing.T) {
	opts := benignOpts(128, 1)
	opts.Params.K = 1
	if _, err := Run(opts); err == nil {
		t.Fatal("invalid params must be rejected")
	}
	opts = benignOpts(128, 1)
	opts.NodeBudget = -1
	if _, err := Run(opts); err == nil {
		t.Fatal("negative budget must be rejected")
	}
}

func TestFullJamDelaysButDelivers(t *testing.T) {
	n := 256
	params := core.PracticalParams(n, 2)
	// Enough budget to block a few rounds, then it runs dry.
	pool := energy.NewPool(20000)
	res, err := Run(Options{
		Params:   params,
		Seed:     3,
		Strategy: adversary.FullJam{},
		Pool:     pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversarySpent == 0 {
		t.Fatal("full jam must spend")
	}
	if res.Informed < n*15/16 {
		t.Fatalf("informed = %d/%d after the jammer exhausts", res.Informed, n)
	}
	if !res.Completed {
		t.Fatal("run must complete after the pool drains")
	}
	benign, _ := Run(benignOpts(n, 3))
	if res.Rounds <= benign.Rounds {
		t.Fatalf("jamming must delay completion: %d vs %d rounds", res.Rounds, benign.Rounds)
	}
	if res.Alice.Cost <= benign.Alice.Cost {
		t.Fatal("jamming must cost Alice something")
	}
}

func TestPhaseBlockerForcesSublinearCost(t *testing.T) {
	n := 256
	params := core.PracticalParams(n, 2)
	pool := energy.NewPool(50000)
	res, err := Run(Options{
		Params: params,
		Seed:   5,
		Strategy: adversary.PhaseBlocker{
			BlockInform: true, BlockPropagate: true, Params: &params,
		},
		Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run must complete once blocking becomes unaffordable")
	}
	if res.Informed < n*15/16 {
		t.Fatalf("informed = %d/%d", res.Informed, n)
	}
	// Resource competitiveness: each correct node spends far less than
	// Carol. (The precise exponent is measured in the experiments.)
	if res.NodeCost.Max*4 > res.AdversarySpent {
		t.Fatalf("node cost %d not clearly below adversary spend %d",
			res.NodeCost.Max, res.AdversarySpent)
	}
}

func TestPartitionBlockerStrandsChosenSet(t *testing.T) {
	n := 256
	strandedSize := 8
	res, err := Run(Options{
		Params: core.PracticalParams(n, 2),
		Seed:   9,
		Strategy: &adversary.PartitionBlocker{
			Stranded: func(node int) bool { return node < strandedSize },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != n-strandedSize {
		t.Fatalf("informed = %d, want %d", res.Informed, n-strandedSize)
	}
	if res.Stranded != strandedSize {
		t.Fatalf("stranded = %d, want %d", res.Stranded, strandedSize)
	}
	if !res.Completed {
		t.Fatal("the stranding attack still lets everyone terminate (that is its point)")
	}
}

func TestNackSpooferKeepsAliceRunning(t *testing.T) {
	n := 256
	benign, err := Run(benignOpts(n, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Params:   core.PracticalParams(n, 2),
		Seed:     11,
		Strategy: &adversary.NackSpoofer{Rate: 0.5, MaxRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alice.Round <= benign.Alice.Round {
		t.Fatalf("spoofing must delay Alice: round %d vs %d", res.Alice.Round, benign.Alice.Round)
	}
	if res.Alice.Cost <= benign.Alice.Cost {
		t.Fatal("spoofing must cost Alice extra listening")
	}
	if res.AdversaryInjections == 0 {
		t.Fatal("spoofer must have injected frames")
	}
	if res.Informed != n {
		t.Fatalf("spoofing does not block delivery: informed=%d", res.Informed)
	}
}

func TestReactiveJammerSilencesWithoutDecoys(t *testing.T) {
	n := 256
	params := core.PracticalParams(n, 2)
	params.MaxRound = params.StartRound + 3
	pool := energy.NewPool(1 << 20)
	res, err := Run(Options{
		Params:        params,
		Seed:          13,
		Strategy:      adversary.ReactiveJammer{},
		Pool:          pool,
		AllowReactive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 0 {
		t.Fatalf("reactive jammer vs undefended protocol: informed = %d, want 0", res.Informed)
	}
	// Crucially she does it cheaply: spending only on used slots, far
	// less than blocking phases outright would cost.
	if res.AdversarySpent*4 > res.SlotsSimulated {
		t.Fatalf("reactive jamming should be cheap: spent %d of %d slots",
			res.AdversarySpent, res.SlotsSimulated)
	}
}

func TestDecoysDefeatReactiveJammer(t *testing.T) {
	n := 256
	params := core.PracticalParams(n, 2)
	params.Decoy = true
	params.DecoyProb = 0.75 / float64(n) // practical cover rate, DESIGN.md §3
	params.ListenBoost = 4
	// Same pool as a few blocked phases; decoys force the reactive
	// jammer to pay for a constant fraction of every slot, draining it.
	pool := energy.NewPool(20000)
	res, err := Run(Options{
		Params:        params,
		Seed:          13,
		Strategy:      adversary.ReactiveJammer{},
		Pool:          pool,
		AllowReactive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed < n*15/16 {
		t.Fatalf("decoy defence failed: informed = %d/%d", res.Informed, n)
	}
	if !pool.Exhausted() {
		t.Fatalf("decoys must drain the reactive pool (spent %d of %d)",
			pool.Spent(), pool.Budget())
	}
}

func TestReactiveStrategyWithoutPermissionIsInert(t *testing.T) {
	res, err := Run(Options{
		Params:        core.PracticalParams(128, 2),
		Seed:          17,
		Strategy:      adversary.ReactiveJammer{},
		AllowReactive: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversarySpent != 0 {
		t.Fatal("reactive strategy without AllowReactive must fall back to nothing")
	}
	if res.Informed != 128 {
		t.Fatalf("informed = %d", res.Informed)
	}
}

func TestNodeBudgetExhaustion(t *testing.T) {
	res, err := Run(Options{
		Params:     core.PracticalParams(256, 2),
		Seed:       19,
		NodeBudget: 3, // absurdly small: nodes die listening
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dead == 0 {
		t.Fatal("tiny node budgets must kill some nodes")
	}
	for _, c := range res.NodeCosts {
		if c > 3 {
			t.Fatalf("node spent %d > budget 3", c)
		}
	}
}

func TestAliceBudgetExhaustion(t *testing.T) {
	res, err := Run(Options{
		Params:      core.PracticalParams(256, 2),
		Seed:        23,
		AliceBudget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Alice.Dead {
		t.Fatal("Alice must exhaust a budget of 5")
	}
	if res.Alice.Cost > 5 {
		t.Fatalf("Alice spent %d > budget", res.Alice.Cost)
	}
	// Note: delivery can still succeed — a single solo transmission on a
	// broadcast channel reaches every concurrently listening node. The
	// budget property under test is only that she never overspends.
}

func TestPaperBudgetsSuffice(t *testing.T) {
	// With the paper's budget formulas (generous C) and no adversary,
	// nobody exhausts.
	n := 1024
	bm := energy.DefaultBudgets(8, 2)
	res, err := Run(Options{
		Params:      core.PracticalParams(n, 2),
		Seed:        29,
		NodeBudget:  bm.Node(n),
		AliceBudget: bm.Alice(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dead != 0 || res.Alice.Dead {
		t.Fatalf("paper budgets must suffice: dead=%d aliceDead=%t", res.Dead, res.Alice.Dead)
	}
	if res.Informed != n {
		t.Fatalf("informed = %d/%d", res.Informed, n)
	}
}

func TestPerturbHeterogeneousEstimates(t *testing.T) {
	// §4.2: constant-factor approximation of ln n and n. Nodes with 2x /
	// 0.5x estimates still all learn m.
	res, err := Run(Options{
		Params: core.PracticalParams(256, 2),
		Seed:   31,
		Perturb: func(node int) (float64, float64) {
			if node%2 == 0 {
				return 2, 0.5
			}
			return 0.5, 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed < 256*15/16 {
		t.Fatalf("approximate parameters broke delivery: %d/256", res.Informed)
	}
	if !res.Completed {
		t.Fatal("run must complete")
	}
}

func TestMaxPhaseSlotsGuard(t *testing.T) {
	params := core.PracticalParams(256, 2)
	_, err := Run(Options{
		Params:        params,
		Seed:          37,
		Strategy:      adversary.FullJam{},
		Pool:          nil, // unlimited jammer: protocol can never finish
		MaxPhaseSlots: 4096,
	})
	if !errors.Is(err, ErrPhaseTooLong) {
		t.Fatalf("want ErrPhaseTooLong, got %v", err)
	}
}

func TestRoundLimitReportsIncomplete(t *testing.T) {
	params := core.PracticalParams(256, 2)
	params.MaxRound = params.StartRound + 1
	res, err := Run(Options{
		Params:   params,
		Seed:     41,
		Strategy: adversary.FullJam{}, // unlimited pool
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("unlimited jammer within the round limit must leave the run incomplete")
	}
	if res.ActiveAtEnd == 0 {
		t.Fatal("nodes should still be active at the round limit")
	}
	if res.Informed != 0 {
		t.Fatalf("nothing should get through a full jam: informed=%d", res.Informed)
	}
}

func TestRecordPhases(t *testing.T) {
	res, err := Run(Options{
		Params:       core.PracticalParams(128, 2),
		Seed:         43,
		RecordPhases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("RecordPhases must retain outcomes")
	}
	k := 2
	if len(res.Phases)%(k+1) != 0 {
		t.Fatalf("phases %d not a multiple of k+1", len(res.Phases))
	}
	first := res.Phases[0]
	if first.Phase.Kind != core.PhaseInform || first.AliceSends == 0 {
		t.Fatalf("first phase should be an inform phase with Alice sending: %+v", first)
	}
}

func TestGeneralKDelivery(t *testing.T) {
	for _, k := range []int{3, 4} {
		res, err := Run(Options{
			Params: core.PracticalParams(256, k),
			Seed:   47,
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Informed < 256*15/16 {
			t.Fatalf("k=%d: informed = %d/256", k, res.Informed)
		}
		if !res.Completed {
			t.Fatalf("k=%d: run must complete", k)
		}
	}
}

func TestPaperVariantK2Delivery(t *testing.T) {
	params := core.PracticalParams(512, 2)
	params.Variant = core.VariantK2Exact
	res, err := Run(Options{Params: params, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 512 {
		t.Fatalf("Figure-1 variant: informed = %d/512", res.Informed)
	}
}

func TestInformedFracAndSummary(t *testing.T) {
	r := &Result{N: 4, Informed: 3}
	if r.InformedFrac() != 0.75 {
		t.Fatalf("InformedFrac = %v", r.InformedFrac())
	}
	empty := &Result{}
	if empty.InformedFrac() != 0 {
		t.Fatal("empty result InformedFrac must be 0")
	}
	s := summarizeCosts([]int64{5, 1, 3})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if summarizeCosts(nil) != (CostSummary{}) {
		t.Fatal("empty summary must be zero")
	}
}

func TestLoadBalancedCosts(t *testing.T) {
	// Alice and the median node must be within polylog factors of each
	// other even under attack.
	n := 256
	params := core.PracticalParams(n, 2)
	res, err := Run(Options{
		Params:   params,
		Seed:     59,
		Strategy: adversary.FullJam{},
		Pool:     energy.NewPool(30000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCost.Median == 0 {
		t.Fatal("median node cost must be positive")
	}
	ratio := float64(res.Alice.Cost) / float64(res.NodeCost.Median)
	if ratio > 200 || ratio < 1.0/200 {
		t.Fatalf("load imbalance: alice=%d median=%d", res.Alice.Cost, res.NodeCost.Median)
	}
}

func TestPolyEstimateSweepDelivers(t *testing.T) {
	// §4.2 polynomial-overestimate mode: nodes know only ν = n² yet the
	// g-sweep still delivers, at a Θ(lg ν)-factor cost.
	n := 256
	params := core.PracticalParams(n, 2)
	params.PolyEstimate = float64(n) * float64(n)
	res, err := Run(Options{Params: params, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed < n*15/16 {
		t.Fatalf("sweep mode informed = %d/%d", res.Informed, n)
	}
	if !res.Completed {
		t.Fatal("sweep mode must terminate")
	}
	plain, err := Run(Options{Params: core.PracticalParams(n, 2), Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	// Latency pays the lg ν factor; cost grows but stays within ~lg ν.
	if res.SlotsSimulated <= plain.SlotsSimulated {
		t.Fatal("sweep mode must be slower than exact-n mode")
	}
	logNu := 16.0
	if float64(res.NodeCost.Median) > 4*logNu*float64(plain.NodeCost.Median)+64 {
		t.Fatalf("sweep median cost %d vs plain %d exceeds the lg ν budget",
			res.NodeCost.Median, plain.NodeCost.Median)
	}
}

func TestPolyEstimateSweepQuietTestSafe(t *testing.T) {
	// The all-sub-phases quiet rule must not let a mostly-uninformed
	// network terminate: block everything for a few rounds and check
	// nobody quits early.
	n := 256
	params := core.PracticalParams(n, 2)
	params.PolyEstimate = float64(n) * float64(n)
	params.MaxRound = params.StartRound + 1
	res, err := Run(Options{
		Params:   params,
		Seed:     67,
		Strategy: adversary.FullJam{}, // unlimited pool
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stranded != 0 {
		t.Fatalf("%d nodes falsely terminated uninformed under full jam", res.Stranded)
	}
	if res.Completed {
		t.Fatal("fully-jammed sweep run must not complete")
	}
}

func TestTracerReceivesConsistentEvents(t *testing.T) {
	counter := &trace.Counter{}
	res, err := Run(Options{
		Params: core.PracticalParams(128, 2),
		Seed:   71,
		Tracer: counter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !counter.DoneCalled {
		t.Fatal("tracer must see Done")
	}
	if counter.Informed != res.Informed {
		t.Fatalf("tracer saw %d informed events, result says %d", counter.Informed, res.Informed)
	}
	if counter.Terminated+counter.Stranded != res.Informed+res.Stranded {
		t.Fatalf("termination events %d+%d do not cover %d informed + %d stranded",
			counter.Terminated, counter.Stranded, res.Informed, res.Stranded)
	}
	if counter.AliceRound != res.Alice.Round {
		t.Fatalf("tracer alice round %d, result %d", counter.AliceRound, res.Alice.Round)
	}
	if counter.Phases == 0 {
		t.Fatal("tracer must see phases")
	}
}

func TestTracerDoesNotPerturbResults(t *testing.T) {
	plain, err := Run(Options{Params: core.PracticalParams(128, 2), Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(Options{
		Params: core.PracticalParams(128, 2),
		Seed:   73,
		Tracer: &trace.Counter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("tracing must not change simulation outcomes")
	}
}

func TestActorEngineTracing(t *testing.T) {
	counter := &trace.Counter{}
	res, err := RunActors(Options{
		Params: core.PracticalParams(128, 2),
		Seed:   79,
		Tracer: counter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter.Informed != res.Informed || !counter.DoneCalled {
		t.Fatalf("actor engine tracing broken: %+v vs informed=%d", counter, res.Informed)
	}
}

func TestDataSpooferCannotInformButCollides(t *testing.T) {
	// Forged copies of m occupy the channel but fail authentication:
	// they can delay (collisions) yet never produce false delivery.
	n := 256
	res, err := Run(Options{
		Params:   core.PracticalParams(n, 2),
		Seed:     89,
		Strategy: adversary.DataSpoofer{Rate: 0.5},
		Pool:     energy.NewPool(20000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversaryInjections == 0 {
		t.Fatal("data spoofer must inject")
	}
	// Every informed node got the genuine m (spoofs carry KindSpoof and
	// cannot inform); delivery still completes once the pool drains.
	if res.Informed < n*15/16 {
		t.Fatalf("informed = %d/%d", res.Informed, n)
	}
}

func TestGreedyAdaptiveEndToEnd(t *testing.T) {
	n := 256
	res, err := Run(Options{
		Params:   core.PracticalParams(n, 2),
		Seed:     97,
		Strategy: &adversary.GreedyAdaptive{},
		Pool:     energy.NewPool(20000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversarySpent == 0 {
		t.Fatal("greedy adversary must spend")
	}
	if res.Informed < n*15/16 || !res.Completed {
		t.Fatalf("greedy adversary must still lose: %+v", res)
	}
}

func TestCompositeEndToEnd(t *testing.T) {
	n := 256
	params := core.PracticalParams(n, 2)
	res, err := Run(Options{
		Params: params,
		Seed:   101,
		Strategy: adversary.Composite{Parts: []adversary.Strategy{
			adversary.PhaseBlocker{BlockInform: true, Params: &params},
			&adversary.NackSpoofer{Rate: 0.3},
		}},
		Pool: energy.NewPool(30000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversaryJams == 0 || res.AdversaryInjections == 0 {
		t.Fatalf("composite must both jam and spoof: %+v", res)
	}
	if res.Informed < n*15/16 {
		t.Fatalf("informed = %d/%d", res.Informed, n)
	}
}
