package energy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMeterBasics(t *testing.T) {
	m := NewMeter(3)
	if m.Budget() != 3 || m.Spent() != 0 || m.Remaining() != 3 {
		t.Fatalf("fresh meter: budget=%d spent=%d remaining=%d", m.Budget(), m.Spent(), m.Remaining())
	}
	for i := 0; i < 3; i++ {
		if err := m.Charge(Send); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	if !m.Exhausted() {
		t.Fatal("meter should be exhausted")
	}
	if err := m.Charge(Listen); !errors.Is(err, ErrExhausted) {
		t.Fatalf("expected ErrExhausted, got %v", err)
	}
	if m.Spent() != 3 || m.SpentOn(Send) != 3 || m.SpentOn(Listen) != 0 {
		t.Fatalf("counters wrong after exhaustion: %+v", m.Snapshot())
	}
}

func TestMeterChargeNAtomic(t *testing.T) {
	m := NewMeter(10)
	if err := m.ChargeN(Jam, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.ChargeN(Jam, 4); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overcharge should fail, got %v", err)
	}
	if m.Spent() != 7 {
		t.Fatalf("failed ChargeN must not partially charge: spent=%d", m.Spent())
	}
	if err := m.ChargeN(Jam, 3); err != nil {
		t.Fatal(err)
	}
	if !m.Exhausted() {
		t.Fatal("should be exhausted at exactly budget")
	}
}

func TestMeterChargeNNonPositive(t *testing.T) {
	m := NewMeter(1)
	if err := m.ChargeN(Send, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.ChargeN(Send, -5); err != nil {
		t.Fatal(err)
	}
	if m.Spent() != 0 {
		t.Fatal("non-positive charges must be no-ops")
	}
}

func TestMeterNegativeBudget(t *testing.T) {
	m := NewMeter(-10)
	if m.Budget() != 0 || !m.Exhausted() {
		t.Fatalf("negative budget must clamp to zero: budget=%d", m.Budget())
	}
}

func TestUnlimitedMeter(t *testing.T) {
	m := NewMeter(Unlimited)
	if err := m.ChargeN(Listen, 1<<40); err != nil {
		t.Fatal(err)
	}
	if m.Exhausted() {
		t.Fatal("unlimited meter can never exhaust")
	}
	if m.Remaining() != Unlimited {
		t.Fatalf("unlimited remaining = %d", m.Remaining())
	}
}

func TestZeroValueMeter(t *testing.T) {
	var m Meter
	if !m.Exhausted() {
		t.Fatal("zero-value meter must be exhausted")
	}
	if err := m.Charge(Send); !errors.Is(err, ErrExhausted) {
		t.Fatalf("zero-value meter charge: %v", err)
	}
}

func TestSnapshotByOp(t *testing.T) {
	m := NewMeter(100)
	_ = m.ChargeN(Send, 5)
	_ = m.ChargeN(Listen, 7)
	_ = m.ChargeN(Jam, 11)
	_ = m.ChargeN(Alter, 2)
	s := m.Snapshot()
	if s.Sends != 5 || s.Listens != 7 || s.Jams != 11 || s.Alters != 2 || s.Spent != 25 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{Send: "send", Listen: "listen", Jam: "jam", Alter: "alter"} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Errorf("unknown op string = %q", Op(99).String())
	}
}

func TestPoolAggregation(t *testing.T) {
	p := NewAdversaryPool(100, 10, 50)
	if p.Budget() != 600 {
		t.Fatalf("pool budget = %d, want 600", p.Budget())
	}
	if err := p.Charge(Jam, 600); err != nil {
		t.Fatal(err)
	}
	if !p.Exhausted() {
		t.Fatal("pool should be exhausted")
	}
	if p.Spent() != 600 || p.SpentOn(Jam) != 600 {
		t.Fatalf("pool spend = %d", p.Spent())
	}
}

func TestPoolUnlimitedPropagation(t *testing.T) {
	if p := NewAdversaryPool(Unlimited, 10, 50); p.Budget() != Unlimited {
		t.Fatal("unlimited Carol must make pool unlimited")
	}
	if p := NewAdversaryPool(100, 10, Unlimited); p.Budget() != Unlimited {
		t.Fatal("unlimited devices must make pool unlimited")
	}
}

func TestZeroValuePool(t *testing.T) {
	var p Pool
	if !p.Exhausted() {
		t.Fatal("zero-value pool must be exhausted")
	}
}

func TestBudgetModelFormulas(t *testing.T) {
	bm := DefaultBudgets(2, 2)
	n := 10000
	wantNode := int64(math.Ceil(2 * math.Sqrt(float64(n))))
	if got := bm.Node(n); got != wantNode {
		t.Fatalf("Node(%d) = %d, want %d", n, got, wantNode)
	}
	wantAlice := int64(math.Ceil(2 * math.Sqrt(float64(n)) * math.Log(float64(n))))
	if got := bm.Alice(n); got != wantAlice {
		t.Fatalf("Alice(%d) = %d, want %d", n, got, wantAlice)
	}
	if bm.Carol(n) != bm.Alice(n) {
		t.Fatal("Carol's budget must equal Alice's (symmetry)")
	}
}

func TestBudgetModelK3LogExponent(t *testing.T) {
	bm := DefaultBudgets(1, 3)
	n := 1000
	ratio := float64(bm.Alice(n)) / float64(bm.Node(n))
	wantRatio := math.Pow(math.Log(float64(n)), 3)
	if math.Abs(ratio-wantRatio)/wantRatio > 0.01 {
		t.Fatalf("Alice/Node ratio = %v, want ~ln^3 n = %v", ratio, wantRatio)
	}
}

func TestBudgetModelExplicitLogExp(t *testing.T) {
	bm := BudgetModel{C: 1, K: 2, AliceLogExp: 0}
	if bm.Alice(10000) != bm.Node(10000) {
		t.Fatal("AliceLogExp=0 must drop the log factor")
	}
}

func TestBudgetModelSmallN(t *testing.T) {
	bm := DefaultBudgets(1, 2)
	if bm.Node(1) < 1 || bm.Alice(1) < 1 {
		t.Fatal("budgets must be at least 1")
	}
}

func TestAdversaryPoolScaling(t *testing.T) {
	// Pool should be ~ C*f*n^{1+1/k}: polynomially larger than any node.
	bm := DefaultBudgets(1, 2)
	n := 4096
	pool := bm.AdversaryPool(n, 1.0)
	node := bm.Node(n)
	wantApprox := float64(n) * float64(node)
	got := float64(pool.Budget())
	if got < wantApprox || got > 2*wantApprox {
		t.Fatalf("pool budget = %v, want within [%v, %v]", got, wantApprox, 2*wantApprox)
	}
}

func TestAdversaryPoolZeroF(t *testing.T) {
	bm := DefaultBudgets(2, 2)
	n := 1000
	pool := bm.AdversaryPool(n, 0)
	if pool.Budget() != bm.Carol(n) {
		t.Fatalf("f=0 pool = %d, want Carol's %d", pool.Budget(), bm.Carol(n))
	}
}

func TestMeterInvariant(t *testing.T) {
	// Property: spent never exceeds budget, and spent equals the sum of
	// per-op counters, under arbitrary charge sequences.
	f := func(budget uint16, ops []uint8) bool {
		m := NewMeter(int64(budget))
		for _, raw := range ops {
			op := Op(raw%4 + 1)
			n := int64(raw % 7)
			_ = m.ChargeN(op, n)
		}
		s := m.Snapshot()
		sum := s.Sends + s.Listens + s.Jams + s.Alters
		return m.Spent() <= m.Budget() && sum == m.Spent()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
