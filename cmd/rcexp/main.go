// Command rcexp runs the reproduction experiments E1–E13 (DESIGN.md §4)
// and streams raw scenario sweeps. It is the tool that regenerates
// EXPERIMENTS.md.
//
// Usage:
//
//	rcexp                 run every experiment at full scale
//	rcexp -id E1          run one experiment
//	rcexp -quick          small sweeps (the test-suite scale)
//	rcexp -procs 8        trial-runner workers (0 = GOMAXPROCS); output
//	                      is byte-identical for every value, modulo the
//	                      "wall time" lines
//	rcexp -markdown       emit GitHub-flavored markdown tables
//	rcexp -list           list experiments with their claims
//	rcexp -list-scenarios list the named scenarios and adversary kinds
//	                      the experiments are built from (internal/scenario)
//	rcexp -list-topologies
//	                      list topology kinds (internal/topology)
//
// Raw sweep mode streams per-trial records instead of aggregated
// reports — bounded memory however many trials, so it is the mode for
// Theorem-1-scale runs:
//
//	rcexp -scenario full-jam -n 1024 -trials 100000 > runs.jsonl
//	rcexp -scenario full-jam -trials 100000 -batch 8 > runs.jsonl
//	rcexp -scenario file.json -trials 50000 -out csv > runs.csv
//	rcexp -scenario gilbert-jam -topology gilbert:r=0.3 -trials 1000 > runs.jsonl
//	rcexp -scenario full-jam -trials 100000 -progress \
//	      -checkpoint sweep.ckpt > runs.jsonl
//
// -shard i/N runs only the i-th of N contiguous shards with sweep-global
// seeds and trial numbers, so a shell loop is a poor-man's cluster:
// concatenating the N outputs in order is byte-identical to the full
// run (and to cmd/rccoordd's merged output):
//
//	for i in 0 1 2; do
//	  rcexp -scenario full-jam -trials 90000 -shard $i/3 > part$i.jsonl &
//	done; wait; cat part0.jsonl part1.jsonl part2.jsonl > runs.jsonl
//
// Ctrl-C stops a sweep (or an experiment) gracefully at the next engine
// phase boundary; with -checkpoint, rerunning the same command resumes
// from the completed-trial journal and the final output is
// byte-identical to an uninterrupted run.
//
// Sweep mode is also the profiling harness: -cpuprofile captures the
// whole sweep (workers included) and -memprofile writes a heap profile
// at sweep end, both readable with `go tool pprof`:
//
//	rcexp -scenario full-jam -n 512 -trials 1000 \
//	      -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"rcbcast/internal/experiment"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/topology"
	"rcbcast/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcexp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcexp", flag.ContinueOnError)
	var (
		id       = fs.String("id", "", "run a single experiment (e.g. E1)")
		quick    = fs.Bool("quick", false, "small sweeps")
		markdown = fs.Bool("markdown", false, "emit markdown tables")
		list     = fs.Bool("list", false, "list experiments")
		listScn  = fs.Bool("list-scenarios", false, "list named scenarios and adversary kinds")
		listTop  = fs.Bool("list-topologies", false, "list topology kinds and their knobs")
		seeds    = fs.Int("seeds", 0, "seeds per sweep point (0 = default)")
		n        = fs.Int("n", 0, "network size override (0 = default)")
		baseSeed = fs.Uint64("seed", 1, "base seed")
		procs    = fs.Int("procs", 0, "parallel trial workers (0 = GOMAXPROCS)")

		scn        = fs.String("scenario", "", "raw sweep mode: stream trials of a named scenario or JSON scenario file")
		topo       = fs.String("topology", "", "raw sweep mode: override the scenario's topology (KIND[:KNOB=V,...])")
		trials     = fs.Int("trials", 0, "raw sweep trial count (requires -scenario)")
		shard      = fs.String("shard", "", "run only the i-th of N contiguous sweep shards, as i/N; output is the byte-exact slice of the full run")
		batch      = fs.Int("batch", 0, "raw sweep batch width: run that many trials per engine call on the batched kernel (0/1 = scalar; output is byte-identical)")
		outFormat  = fs.String("out", "jsonl", "raw sweep output format: jsonl or csv")
		progress   = fs.Bool("progress", false, "report sweep progress on stderr")
		checkpoint = fs.String("checkpoint", "", "journal completed trials here; rerun to resume")
		cpuprofile = fs.String("cpuprofile", "", "raw sweep mode: write a pprof CPU profile of the sweep here")
		memprofile = fs.String("memprofile", "", "raw sweep mode: write a pprof heap profile at sweep end here")
		showVer    = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *showVer {
		fmt.Fprintln(out, version.String())
		return nil
	}
	if *listScn {
		scenario.WriteList(out)
		return nil
	}
	if *listTop {
		topology.WriteList(out)
		return nil
	}
	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	if *topo != "" && *scn == "" {
		return errors.New("-topology needs -scenario (sweep mode)")
	}
	if (*cpuprofile != "" || *memprofile != "") && *scn == "" {
		return errors.New("-cpuprofile/-memprofile need -scenario (sweep mode)")
	}
	if *shard != "" && *scn == "" {
		return errors.New("-shard needs -scenario (sweep mode)")
	}
	if *scn != "" {
		return runSweep(ctx, out, sweepConfig{
			scenario:   *scn,
			topology:   *topo,
			n:          *n,
			trials:     *trials,
			shard:      *shard,
			batch:      *batch,
			baseSeed:   *baseSeed,
			procs:      *procs,
			outFormat:  *outFormat,
			progress:   *progress,
			checkpoint: *checkpoint,
			cpuprofile: *cpuprofile,
			memprofile: *memprofile,
		})
	}

	cfg := experiment.Config{
		Quick:    *quick,
		Seeds:    *seeds,
		N:        *n,
		BaseSeed: *baseSeed,
		Procs:    *procs,
		Context:  ctx,
	}

	var exps []experiment.Experiment
	if *id != "" {
		e, ok := experiment.ByID(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *id)
		}
		exps = []experiment.Experiment{e}
	} else {
		exps = experiment.All()
	}

	for _, e := range exps {
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			// Both the sweep layer (*sim.PartialError) and direct engine
			// runs (*engine.PartialRunError, e.g. E11) unwrap to the
			// context error on Ctrl-C.
			if errors.Is(err, context.Canceled) {
				return fmt.Errorf("%s interrupted: %w", e.ID, err)
			}
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *markdown {
			fmt.Fprintf(out, "### %s — %s\n\n*Claim:* %s\n\n", rep.ID, rep.Title, rep.Claim)
			for _, t := range rep.Tables {
				fmt.Fprintln(out, t.Markdown())
			}
			for _, f := range rep.Findings {
				fmt.Fprintf(out, "- %s\n", f)
			}
			fmt.Fprintf(out, "- wall time: %v\n\n", time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Fprintln(out, rep.Render())
			fmt.Fprintf(out, "wall time: %v\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// sweepConfig gathers the raw-sweep flags.
type sweepConfig struct {
	scenario   string
	topology   string
	n          int
	trials     int
	shard      string // "i/N", empty = whole sweep
	batch      int
	baseSeed   uint64
	procs      int
	outFormat  string
	progress   bool
	checkpoint string
	cpuprofile string
	memprofile string
}

// profileSweep starts the requested pprof captures around a sweep and
// returns a finish func that stops the CPU profile and writes the heap
// profile (after a GC, so it reflects retained memory, not garbage).
func profileSweep(cfg sweepConfig) (finish func() error, err error) {
	var cpuFile *os.File
	if cfg.cpuprofile != "" {
		cpuFile, err = os.Create(cfg.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if cfg.memprofile != "" {
			f, err := os.Create(cfg.memprofile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// runSweep streams per-trial records of one scenario through the
// session API: O(procs) live results, optional progress reporting, and
// a resumable completed-trial journal.
func runSweep(ctx context.Context, out io.Writer, cfg sweepConfig) (err error) {
	sc, err := loadScenario(cfg.scenario)
	if err != nil {
		return err
	}
	finishProfiles, err := profileSweep(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if perr := finishProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	if cfg.topology != "" {
		spec, terr := topology.ParseSpec(cfg.topology)
		if terr != nil {
			return terr
		}
		// ApplyTopology also bounds sparse runs (ExtraRounds default).
		sc.ApplyTopology(spec)
	}
	if cfg.n > 0 {
		sc.N = cfg.n
	} else if sc.N == 0 {
		sc.N = 512
	}
	if cfg.trials <= 0 {
		return errors.New("-trials must be positive in sweep mode")
	}
	// -batch overrides the scenario's own batch width; either routes the
	// sweep through the batched lockstep kernel.
	width := sc.Batch
	if cfg.batch > 0 {
		width = cfg.batch
	}
	var sh scenario.Shard
	if cfg.shard != "" {
		sh, err = parseShard(cfg.shard, cfg.trials)
		if err != nil {
			return err
		}
	}
	specs, err := sc.ShardSpecs(cfg.baseSeed, 0, cfg.trials, sh)
	if err != nil {
		return err
	}
	var sinks []sim.Sink
	switch cfg.outFormat {
	case "jsonl":
		sinks = append(sinks, sink.NewNDJSON(out))
	case "csv":
		sinks = append(sinks, sink.NewCSV(out))
	default:
		return fmt.Errorf("unknown -out %q (have jsonl, csv)", cfg.outFormat)
	}
	if cfg.progress {
		// Time-throttled: one line per second with trials/s and ETA,
		// however long the trials take — a count-based cadence either
		// spams short trials or goes silent on expensive ones.
		sinks = append(sinks, sink.NewProgressEvery(os.Stderr, len(specs), time.Second))
	}
	if cfg.checkpoint != "" {
		cp, cerr := sink.OpenCheckpoint(cfg.checkpoint)
		if cerr != nil {
			return cerr
		}
		defer cp.Close()
		if cp.Done() > 0 {
			fmt.Fprintf(os.Stderr, "rcexp: resuming %d/%d journaled trials from %s\n",
				cp.Done(), len(specs), cfg.checkpoint)
		}
		if sh.IsZero() {
			err = sink.StreamCheckpointedBatch(ctx, cfg.procs, width, specs, cp, sinks...)
		} else {
			err = sink.StreamCheckpointedShard(ctx, cfg.procs, width, sh.Lo, specs, cp, sinks...)
		}
	} else {
		if !sh.IsZero() {
			// Deliver sweep-global trial numbers, so concatenating the N
			// shard outputs in order reproduces the full run exactly.
			for i, s := range sinks {
				sinks[i] = sink.Offset(sh.Lo, s)
			}
		}
		err = sim.StreamBatch(ctx, cfg.procs, width, specs, sinks...)
	}
	var pe *sim.PartialError
	if errors.As(err, &pe) && errors.Is(pe, context.Canceled) {
		hint := "rerun with -checkpoint to make sweeps resumable"
		if cfg.checkpoint != "" {
			hint = fmt.Sprintf("rerun the same command to resume from %s", cfg.checkpoint)
		}
		return fmt.Errorf("sweep interrupted (%s): %w", hint, err)
	}
	return err
}

// parseShard resolves "-shard i/N" into the i-th contiguous shard of
// the sweep (scenario.CutShard's i/N partition, 0-indexed).
func parseShard(arg string, trials int) (scenario.Shard, error) {
	var i, n int
	if _, err := fmt.Sscanf(arg, "%d/%d", &i, &n); err != nil {
		return scenario.Shard{}, fmt.Errorf("-shard must be i/N (e.g. 0/4), got %q", arg)
	}
	sh, err := scenario.CutShard(trials, i, n)
	if err != nil {
		return scenario.Shard{}, err
	}
	return sh, nil
}

// loadScenario resolves a registry name or a JSON scenario file.
func loadScenario(arg string) (scenario.Scenario, error) {
	if sc, ok := scenario.Lookup(arg); ok {
		return sc, nil
	}
	if strings.HasSuffix(arg, ".json") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return scenario.Scenario{}, err
		}
		return scenario.Decode(data)
	}
	return scenario.Scenario{}, fmt.Errorf(
		"unknown scenario %q: not a registry name (-list-scenarios) and not a .json file", arg)
}
