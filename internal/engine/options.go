// Package engine executes ε-BROADCAST (internal/core) against an adversary
// (internal/adversary) on the slot channel model (internal/slotsim).
//
// Two engines are provided:
//
//   - Run: a sequential, event-driven engine. Per-slot coin flips are
//     simulated by geometric skipping (internal/sampling), so the work per
//     phase is proportional to the number of *actions*, not slots. This is
//     what makes Theorem-1-scale parameter sweeps feasible.
//   - RunActors: one goroutine per node (plus Alice and a coordinator),
//     the natural Go mapping for a sensor network. Node work — schedule
//     generation, energy charging, and listen resolution — runs in the
//     actors; the coordinator owns the shared channel state.
//
// Both engines draw every random decision from the same keyed streams
// (internal/rng), charge energy under the same rules, and therefore
// produce bit-for-bit identical Results for identical Options. The
// equivalence test in this package asserts exactly that.
//
// Energy-enforcement rule (shared): a device's transmissions for a phase
// are committed and charged at phase start in slot order, truncated when
// its budget exhausts; listens are charged as they occur. A device whose
// budget exhausts is dead: it stops participating and, if uninformed,
// counts as a failure.
package engine

import (
	"errors"
	"fmt"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/topology"
	"rcbcast/internal/trace"
)

// Options configures a single protocol execution.
type Options struct {
	// Params is the protocol instance. Required; must Validate.
	Params core.Params
	// Seed drives every random decision of the run.
	Seed uint64
	// Topology selects the neighborhood graph reception is resolved
	// against (internal/topology). The zero value is the clique — the
	// paper's single-hop channel — which resolves through the original
	// global-channel fast path, byte-identical to the pre-topology
	// engine. Randomized topologies (gilbert) are built
	// deterministically from Seed, so trials stay reproducible across
	// worker counts.
	Topology topology.Spec
	// Strategy is Carol; nil means no adversary.
	Strategy adversary.Strategy
	// Pool is the adversary's energy. nil means unlimited (useful when an
	// experiment caps spend through the strategy itself).
	Pool *energy.Pool
	// NodeBudget caps each correct node's spend; 0 means unlimited.
	NodeBudget int64
	// AliceBudget caps Alice's spend; 0 means unlimited.
	AliceBudget int64
	// AllowReactive grants a Reactive strategy its within-slot RSSI view.
	// When false, reactive strategies fall back to their adaptive
	// PlanPhase.
	AllowReactive bool
	// Payload is the message m. The engine models authentication at the
	// type level — only genuinely authentic frames carry msg.KindData,
	// spoofs carry msg.KindSpoof and can never inform a node — so the
	// payload's bytes do not influence simulation outcomes; the full
	// HMAC path is exercised by the msg and slotsim packages.
	Payload []byte
	// Perturb, if set, returns per-node multipliers for the listening and
	// sending probabilities — the §4.2 heterogeneous-estimate mode where
	// nodes know ln n and n only approximately. Must be deterministic.
	Perturb func(node int) (listenScale, sendScale float64)
	// RecordPhases retains per-phase outcomes in the Result.
	RecordPhases bool
	// Tracer, if non-nil, receives structured execution events in
	// deterministic order (the engine serializes all calls, so tracers
	// need not be concurrency-safe).
	Tracer trace.Tracer
	// MaxPhaseSlots aborts runs whose next phase exceeds this many slots
	// (guards against accidentally unbounded memory). 0 means 1<<26.
	MaxPhaseSlots int
	// Scratch, if non-nil, recycles the run's working buffers (channel
	// state, per-node state) across executions — the allocation-rate
	// lever for tight trial loops. A Scratch must never be shared by
	// concurrently executing runs; results are byte-identical with and
	// without one.
	Scratch *Scratch
}

// ErrPhaseTooLong is returned when a phase exceeds MaxPhaseSlots.
var ErrPhaseTooLong = errors.New("engine: phase exceeds MaxPhaseSlots")

func (o *Options) maxPhaseSlots() int {
	if o.MaxPhaseSlots > 0 {
		return o.MaxPhaseSlots
	}
	return 1 << 26
}

func (o *Options) strategy() adversary.Strategy {
	if o.Strategy != nil {
		return o.Strategy
	}
	return adversary.Null{}
}

func (o *Options) validate() error {
	if err := o.Params.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if o.NodeBudget < 0 || o.AliceBudget < 0 {
		return errors.New("engine: budgets must be non-negative")
	}
	if err := o.Topology.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// AliceStats summarizes Alice's run.
type AliceStats struct {
	// Sends and Listens are her slot counts; Cost is their sum.
	Sends, Listens, Cost int64
	// Terminated reports a clean exit via the quiet test; Dead reports
	// budget exhaustion.
	Terminated bool
	Dead       bool
	// Round is the round in which she stopped (0 if she never did).
	Round int
}

// CostSummary describes the distribution of per-node costs.
type CostSummary struct {
	Min, Max, Median int64
	Mean             float64
}

// Result is the outcome of one protocol execution.
type Result struct {
	// N is the number of correct nodes.
	N int
	// Informed counts nodes that received m.
	Informed int
	// Stranded counts nodes that terminated uninformed (the ε loss).
	Stranded int
	// Dead counts nodes that exhausted their budget.
	Dead int
	// ActiveAtEnd counts nodes still running when the round limit hit.
	ActiveAtEnd int
	// Completed reports that Alice and every node stopped before the
	// round limit.
	Completed bool
	// Rounds is the index of the last executed round.
	Rounds int
	// SlotsSimulated is total protocol time (the latency measure).
	SlotsSimulated int64

	// Alice aggregates Alice's costs and exit.
	Alice AliceStats
	// NodeCosts holds each node's total spend, indexed by node id.
	NodeCosts []int64
	// NodeCost summarizes NodeCosts.
	NodeCost CostSummary

	// AdversarySpent is Carol's total spend T (jams + injections).
	AdversarySpent int64
	// AdversaryJams and AdversaryInjections split T by operation.
	AdversaryJams, AdversaryInjections int64
	// StrategyName records which adversary ran.
	StrategyName string

	// Phases holds per-phase outcomes when Options.RecordPhases is set.
	Phases []adversary.PhaseOutcome
}

// InformedFrac returns Informed/N.
func (r *Result) InformedFrac() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Informed) / float64(r.N)
}

// MaxNodeCost returns the largest single-node spend.
func (r *Result) MaxNodeCost() int64 { return r.NodeCost.Max }
