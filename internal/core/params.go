// Package core implements the ε-BROADCAST protocol of Gilbert & Young,
// "Making Evildoers Pay: Resource-Competitive Broadcast in Sensor
// Networks" (PODC 2012) — the paper's primary contribution.
//
// The protocol proceeds in rounds i = 1, 2, ... Each round has three
// phases (Figure 1 for k = 2, Figure 2 for general k ≥ 2):
//
//	Inform:      Alice transmits m with a per-slot probability; uninformed
//	             nodes sample the channel. Creates the seed set S_{i,1}.
//	Propagation: k-1 steps; nodes informed in the previous phase/step
//	             relay m with probability 1/n per slot and terminate at
//	             the end of their step. Grows S_{i,1} → ... → S_{i,k-1} →
//	             everyone (when Carol cannot afford to block).
//	Request:     uninformed nodes NACK with probability 1/n; Alice and
//	             the uninformed nodes terminate if they hear at most
//	             5c·ln n noisy slots (the "quiet test", §2.2).
//
// This package is the protocol *specification*: parameters, the round
// schedule with every per-slot probability, and the node/Alice state rules
// as pure functions. The simulation loops that execute the specification
// live in internal/engine, which keeps the protocol reusable by both the
// fast event-driven engine and the goroutine actor engine.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Variant selects which figure's probability constants are used.
type Variant uint8

const (
	// VariantGeneralK is Figure 2, valid for any k >= 2 (the canonical
	// form; substitutes a = 1/k, b = 1).
	VariantGeneralK Variant = iota
	// VariantK2Exact is Figure 1 verbatim; requires K == 2. Differs from
	// VariantGeneralK at k = 2 only in logarithmic factors (DESIGN.md §2).
	VariantK2Exact
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantGeneralK:
		return "general-k"
	case VariantK2Exact:
		return "k2-exact"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Params fully determines an ε-BROADCAST instance. The zero value is not
// runnable; construct with PaperParams or PracticalParams and adjust.
type Params struct {
	// N is the number of correct nodes.
	N int
	// K is the protocol parameter k >= 2 of Theorem 1. Larger K improves
	// the resource-competitive exponent 1/(K+1) at the price of Θ(K)
	// more phases per round (§3.2 shows K = ω(1) is impossible).
	K int
	// Epsilon is ε′ > 0: the quiet-test scale. Up to O(ε′)·N nodes may
	// terminate uninformed (Theorem 1's ε after renormalization).
	Epsilon float64
	// C is the protocol constant c > 0 appearing in the sending/listening
	// probabilities and in the 5c·ln n termination threshold.
	C float64
	// Variant selects Figure 1 or Figure 2 probabilities.
	Variant Variant

	// StartRound is the first round index i. The paper notes any constant
	// start works (§2.3); practical deployments skip the rounds whose
	// probabilities clamp at 1.
	StartRound int
	// MaxRound caps the rounds simulated. Zero means the natural limit
	// lg n + 4 (the analysis shows Carol cannot block beyond lg n + O(1)
	// when budgets are respected).
	MaxRound int

	// Decoy enables the §4.1 defence against reactive jamming: each
	// active correct node transmits cover traffic during inform and
	// propagation phases so a reactive Carol cannot tell m from chaff.
	Decoy bool
	// DecoyProb is the per-slot decoy probability. Zero selects the
	// paper's 3/(4ε′n).
	DecoyProb float64
	// ListenBoost multiplies node listening probabilities in decoy mode
	// to compensate for decoy-on-decoy collisions. Zero selects a
	// practical constant (the paper's 16e^{3/(2ε′)}/(ε′(1-δ′)) formula is
	// a worst-case artifact; see DESIGN.md §3).
	ListenBoost float64

	// LnOverride, if positive, replaces ln N in every probability — the
	// §4.2 approximate-parameter mode (nodes know ln n only to a
	// constant factor).
	LnOverride float64
	// NOverride, if positive, replaces N in the 1/n sending
	// probabilities (§4.2: nodes share only an estimate of n).
	NOverride float64
	// PolyEstimate, if > 1, enables the §4.2 polynomial-overestimate
	// mode: nodes know only ν = n^{c'} >= n. Every propagation step and
	// the request phase are swept over sub-phases g = 1..⌈lg ν⌉ with
	// sending probability 1/2^g, so some sub-phase uses the correct
	// scale to within a factor of 2. Costs and latency grow by the
	// Θ(lg ν) factor the paper concedes. The value is ν itself.
	PolyEstimate float64

	// Quiet selects the request-phase termination test. The paper's
	// absolute test (noisy slots <= 5c ln n) discriminates "few
	// uninformed remain" from "many remain" only when ε′ is tiny
	// (Lemmas 5 and 7 need ε′ <= 1/32 and <= 1/1024 respectively), which
	// is unaffordable at laptop-scale n. QuietFraction implements the
	// same intent — terminate iff the *fraction* of noisy listen slots is
	// at most QuietFrac — and discriminates at every scale. PaperParams
	// uses QuietAbsolute; PracticalParams uses QuietFraction. See
	// DESIGN.md §3.
	Quiet QuietMode
	// QuietFrac is the noisy-fraction termination threshold for
	// QuietFraction mode. Zero selects 2ε′ (allowing roughly a 2ε′
	// fraction of nodes to be stranded, the paper's ε after
	// renormalization).
	QuietFrac float64
	// QuietMinListens gates the fraction test: a device applies it only
	// after at least this many listens in the phase, so early short
	// rounds cannot trigger spurious termination. Zero selects
	// ceil(c·ln n).
	QuietMinListens int
	// MinTerminationRound is the earliest round in which the quiet test
	// may fire — the paper's §2.3 rule that a node "run until at least
	// its respective estimate of d·lg ln n is reached before
	// terminating" (d ≥ 3): with the absolute test, early short rounds
	// would trivially pass it (few listens ≤ 5c·ln n). Zero selects
	// ⌈3·lg ln n⌉ in QuietAbsolute mode; the fraction test is already
	// gated by QuietMinListens, so zero disables the guard there.
	MinTerminationRound int
}

// QuietMode selects the request-phase termination test.
type QuietMode uint8

const (
	// QuietAbsolute is the paper's test: terminate iff at most 5c·ln n
	// noisy slots were heard in the request phase.
	QuietAbsolute QuietMode = iota
	// QuietFraction terminates iff (noisy listens)/(listens) <= QuietFrac
	// and at least QuietMinListens listens occurred.
	QuietFraction
)

// String names the quiet mode.
func (q QuietMode) String() string {
	switch q {
	case QuietAbsolute:
		return "absolute"
	case QuietFraction:
		return "fraction"
	default:
		return fmt.Sprintf("QuietMode(%d)", uint8(q))
	}
}

// PaperParams returns the protocol exactly as analyzed: Figure 1
// probabilities for k = 2, Figure 2 otherwise, starting at round 1 with
// c = 1 and ε′ = 1/64. Constants follow the paper's formulas even where
// they are pessimistic; use PracticalParams for experiments at laptop n.
func PaperParams(n, k int) Params {
	v := VariantGeneralK
	if k == 2 {
		v = VariantK2Exact
	}
	return Params{
		N:          n,
		K:          k,
		Epsilon:    1.0 / 64,
		C:          1,
		Variant:    v,
		StartRound: 1,
	}
}

// PracticalParams returns parameters tuned for simulations at n in the
// thousands: the same functional forms with a larger ε′ (cheaper
// listening), and a start round chosen past the regime where listening
// probabilities clamp at 1 (the paper's own suggestion, §2.3). These are
// the defaults used by the experiment harness.
func PracticalParams(n, k int) Params {
	p := PaperParams(n, k)
	p.Epsilon = 1.0 / 16
	p.Quiet = QuietFraction
	// Start at the first round where no *node* probability is clamped at
	// 1 (the paper's own observation that any agreed-upon start works;
	// starting inside the clamp region only wastes energy). Alice's
	// Figure-2 send probability 2c·ln^k n/2^i can stay clamped much
	// longer at small n; that is a finite-size effect the experiments
	// document, not a reason to delay every node.
	p.StartRound = 1
	for i := 1; i < 62; i++ {
		clamped := false
		for _, ph := range p.Round(i) {
			if ph.NodeListenP >= 1 || ph.NodeSendP >= 1 {
				clamped = true
				break
			}
		}
		if !clamped {
			p.StartRound = i
			break
		}
	}
	return p
}

// EnableDecoy turns on the §4.1 decoy defence with the constants the
// repo's experiments and CLIs standardize on: DecoyProb = 3/(4n), so
// roughly half of all slots carry chaff at practical ε′, and
// ListenBoost = 4 to compensate decoy-on-decoy collisions (DESIGN.md
// §3 derives both). This is the single source of truth for the
// defence's tuning — adjust DecoyProb/ListenBoost afterwards to
// deviate.
func (p *Params) EnableDecoy() {
	p.Decoy = true
	p.DecoyProb = 0.75 / float64(p.N)
	p.ListenBoost = 4
}

// quietFrac returns the effective fraction threshold.
func (p *Params) quietFrac() float64 {
	if p.QuietFrac > 0 {
		return p.QuietFrac
	}
	return 2 * p.Epsilon
}

// quietMinListens returns the effective listen gate.
func (p *Params) quietMinListens() int {
	if p.QuietMinListens > 0 {
		return p.QuietMinListens
	}
	return int(math.Ceil(p.C * p.LnN()))
}

// CanTerminate reports whether the quiet test may fire in the given
// round (§2.3's d·lg ln n warm-up for the absolute test).
func (p *Params) CanTerminate(round int) bool {
	min := p.MinTerminationRound
	if min == 0 && p.Quiet == QuietAbsolute {
		min = int(math.Ceil(3 * math.Log2(math.Max(p.LnN(), 2))))
	}
	return round >= min
}

// ShouldTerminateQuiet decides the request-phase quiet test given how many
// slots the device listened to and how many of those were noisy (a
// received NACK counts as noisy, §2.2).
func (p *Params) ShouldTerminateQuiet(listens, noisy int) bool {
	switch p.Quiet {
	case QuietFraction:
		if listens < p.quietMinListens() {
			return false
		}
		return float64(noisy) <= p.quietFrac()*float64(listens)
	default: // QuietAbsolute, the paper's test
		return noisy <= p.NoisyThreshold()
	}
}

// Validation errors.
var (
	ErrBadN       = errors.New("core: N must be >= 2")
	ErrBadK       = errors.New("core: K must be >= 2")
	ErrBadEpsilon = errors.New("core: Epsilon must be in (0, 1)")
	ErrBadC       = errors.New("core: C must be > 0")
	ErrBadVariant = errors.New("core: VariantK2Exact requires K == 2")
	ErrBadRounds  = errors.New("core: StartRound must be >= 1 and <= MaxRound")
)

// Validate reports the first violated constraint, or nil.
func (p *Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("%w (got %d)", ErrBadN, p.N)
	case p.K < 2:
		return fmt.Errorf("%w (got %d)", ErrBadK, p.K)
	case p.Epsilon <= 0 || p.Epsilon >= 1:
		return fmt.Errorf("%w (got %v)", ErrBadEpsilon, p.Epsilon)
	case p.C <= 0:
		return fmt.Errorf("%w (got %v)", ErrBadC, p.C)
	case p.Variant == VariantK2Exact && p.K != 2:
		return fmt.Errorf("%w (got K=%d)", ErrBadVariant, p.K)
	case p.StartRound < 1:
		return fmt.Errorf("%w (StartRound=%d)", ErrBadRounds, p.StartRound)
	case p.MaxRound != 0 && p.MaxRound < p.StartRound:
		return fmt.Errorf("%w (StartRound=%d MaxRound=%d)", ErrBadRounds, p.StartRound, p.MaxRound)
	}
	return nil
}

// LnN returns the ln n every probability formula uses: the natural log of
// N, at least 1 (so tiny test networks stay well-defined), or LnOverride.
func (p *Params) LnN() float64 {
	if p.LnOverride > 0 {
		return p.LnOverride
	}
	return math.Max(math.Log(float64(p.N)), 1)
}

// EffectiveN returns the n used in the 1/n sending probabilities
// (NOverride if set).
func (p *Params) EffectiveN() float64 {
	if p.NOverride > 0 {
		return p.NOverride
	}
	return float64(p.N)
}

// LastRound returns the configured or natural final round index.
func (p *Params) LastRound() int {
	if p.MaxRound != 0 {
		return p.MaxRound
	}
	return int(math.Ceil(math.Log2(float64(p.N)))) + 4
}

// NoisyThreshold is the request-phase quiet test: Alice and uninformed
// nodes terminate after a request phase in which they heard at most this
// many noisy slots (5c·ln n, §2.2).
func (p *Params) NoisyThreshold() int {
	return int(math.Ceil(5 * p.C * p.LnN()))
}

// decoyProb returns the per-slot decoy transmission probability.
func (p *Params) decoyProb() float64 {
	if !p.Decoy {
		return 0
	}
	if p.DecoyProb > 0 {
		return p.DecoyProb
	}
	return 3 / (4 * p.Epsilon * p.EffectiveN())
}

// listenBoost returns the decoy-mode listening multiplier.
func (p *Params) listenBoost() float64 {
	if !p.Decoy {
		return 1
	}
	if p.ListenBoost > 0 {
		return p.ListenBoost
	}
	// Practical default: a small constant covering the ≤ e^{-3/(2ε′)}
	// chance a given slot is decoy-occupied at practical ε′.
	return 4
}
