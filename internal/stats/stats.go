// Package stats provides the statistics the experiment harness relies on:
// summary statistics across seeds, log-log power-law fitting (the tool
// that turns cost-vs-T sweeps into measured exponents comparable with
// Theorem 1's 1/(k+1)), and plain-text/markdown table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P25, P75         float64
}

// Summarize computes a Summary; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    sorted[0],
		Median: Quantile(sorted, 0.5),
		Max:    sorted[len(sorted)-1],
		P25:    Quantile(sorted, 0.25),
		P75:    Quantile(sorted, 0.75),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted sample using
// linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean is a convenience over Summarize.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// PowerLawFit is the least-squares fit of y = a * x^b on log-log axes.
type PowerLawFit struct {
	// Exponent is b, the quantity the resource-competitiveness
	// experiments compare against 1/(k+1).
	Exponent float64
	// Scale is a.
	Scale float64
	// R2 is the coefficient of determination in log space.
	R2 float64
	// N is the number of points used.
	N int
}

// FitPowerLaw fits y = a*x^b by ordinary least squares on (ln x, ln y).
// Points with non-positive coordinates are skipped. Fewer than two usable
// points yield a zero fit with N reporting how many were usable.
func FitPowerLaw(xs, ys []float64) PowerLawFit {
	if len(xs) != len(ys) {
		panic("stats: FitPowerLaw requires equal-length slices")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if len(lx) < 2 {
		return PowerLawFit{N: len(lx)}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
		syy += ly[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return PowerLawFit{N: len(lx)}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// R² in log space.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range lx {
		pred := a + b*lx[i]
		ssRes += (ly[i] - pred) * (ly[i] - pred)
		ssTot += (ly[i] - meanY) * (ly[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerLawFit{Exponent: b, Scale: math.Exp(a), R2: r2, N: len(lx)}
}

// String renders the fit compactly.
func (f PowerLawFit) String() string {
	return fmt.Sprintf("y ~ %.3g * x^%.3f (R²=%.3f, n=%d)", f.Scale, f.Exponent, f.R2, f.N)
}
