// Command parallelsweep demonstrates the deterministic parallel trial
// runner: a batch of full-jam runs dispatched across workers, with
// byte-identical aggregates whatever the worker count.
package main

import (
	"fmt"

	"rcbcast"
)

func main() {
	const trials = 16
	// One declarative scenario fans out into per-trial specs; the
	// spec factories mint fresh adversary state per trial, so the batch
	// is safe on any worker count.
	sc := rcbcast.Scenario{
		N: 512, K: 2,
		Adversary: rcbcast.AdversarySpec{Kind: "full"},
		Budget:    rcbcast.BudgetSpec{Pool: 1 << 12},
	}
	specs := make([]rcbcast.TrialSpec, trials)
	for i := range specs {
		spec, err := sc.TrialSpec(rcbcast.TrialSeed(1, i))
		if err != nil {
			panic(err)
		}
		specs[i] = spec
	}
	for _, procs := range []int{1, 8} {
		results, err := rcbcast.RunTrials(procs, specs)
		if err != nil {
			panic(err)
		}
		var informed, alice, carol int64
		for _, res := range results {
			informed += int64(res.Informed)
			alice += res.Alice.Cost
			carol += res.AdversarySpent
		}
		fmt.Printf("procs=%-2d  %d trials: informed %d nodes total, alice paid %d, carol paid %d\n",
			procs, trials, informed, alice, carol)
	}
	fmt.Println("aggregates above must match line for line — that is the determinism guarantee")
}
