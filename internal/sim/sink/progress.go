package sink

import (
	"fmt"
	"io"
	"time"

	"rcbcast/internal/engine"
)

// Progress reports sweep advancement on a side channel (stderr) while
// the stream's primary sinks write the data. It has two modes:
//
//   - Count mode (NewProgress): one line every Every delivered trials.
//     Reporting depends only on the delivery count, so the lines are
//     deterministic — the mode tests and goldens rely on.
//   - Time mode (NewProgressEvery): at most one line per interval, each
//     carrying the observed delivery rate (trials/s) and, when the
//     total is known, an ETA. Lines depend on wall-clock timing and are
//     not deterministic; this is the mode for humans watching a long
//     sweep and for the service's status endpoint.
//
// Both modes print a final line at Flush, so interrupted streams still
// show how far they got.
type Progress struct {
	w            io.Writer
	total, every int
	done         int
	lastLine     int

	// Time mode: report at most once per interval, with rate and ETA.
	interval   time.Duration
	now        func() time.Time // injectable for deterministic tests
	start      time.Time        // first delivery (rate epoch)
	lastReport time.Time
}

// NewProgress returns a count-mode progress sink writing to w. total is
// the expected trial count (0 omits percentages); every <= 0 reports
// every trial.
func NewProgress(w io.Writer, total, every int) *Progress {
	if every <= 0 {
		every = 1
	}
	return &Progress{w: w, total: total, every: every}
}

// NewProgressEvery returns a time-mode progress sink writing to w: at
// most one line per interval (<= 0 selects one second), each reporting
// the delivery rate and — when total > 0 — the ETA. Rate is measured
// from the first delivered trial, so a checkpoint resume's replayed
// prefix (delivered in microseconds) only briefly inflates it.
func NewProgressEvery(w io.Writer, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{w: w, total: total, interval: interval, now: time.Now}
}

// Trial implements sim.Sink.
func (p *Progress) Trial(int, *engine.Result) error {
	p.done++
	if p.interval > 0 {
		now := p.now()
		if p.start.IsZero() {
			p.start, p.lastReport = now, now
			return nil
		}
		if now.Sub(p.lastReport) < p.interval {
			return nil
		}
		p.lastReport = now
		return p.line(now)
	}
	if p.done%p.every == 0 {
		return p.line(time.Time{})
	}
	return nil
}

// Flush implements sim.Sink: a final line covers the tail (or reports
// an empty sweep), so interrupted streams still show how far they got.
func (p *Progress) Flush() error {
	if p.lastLine == p.done && p.done != 0 {
		return nil
	}
	var now time.Time
	if p.interval > 0 {
		now = p.now()
	}
	return p.line(now)
}

func (p *Progress) line(now time.Time) error {
	p.lastLine = p.done
	var counts string
	if p.total > 0 {
		counts = fmt.Sprintf("progress: %d/%d trials (%.1f%%)",
			p.done, p.total, 100*float64(p.done)/float64(p.total))
	} else {
		counts = fmt.Sprintf("progress: %d trials", p.done)
	}
	if p.interval == 0 {
		_, err := fmt.Fprintln(p.w, counts)
		return err
	}
	rate := Rate(p.done, p.start, now)
	if rate <= 0 {
		_, err := fmt.Fprintln(p.w, counts)
		return err
	}
	if p.total > 0 && p.done < p.total {
		_, err := fmt.Fprintf(p.w, "%s %.1f trials/s eta %s\n",
			counts, rate, ETA(p.done, p.total, rate))
		return err
	}
	_, err := fmt.Fprintf(p.w, "%s %.1f trials/s\n", counts, rate)
	return err
}

// Rate computes a delivery rate in trials/s from a count and its
// observation span: done trials since start, observed at now. It
// returns 0 when the span is empty or not yet started — callers omit
// the rate rather than print an infinity.
func Rate(done int, start, now time.Time) float64 {
	if start.IsZero() || done <= 0 {
		return 0
	}
	elapsed := now.Sub(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(done) / elapsed.Seconds()
}

// ETA projects the remaining runtime of a sweep from its observed rate,
// rounded to whole seconds (sub-second precision is noise at sweep
// scale). Zero when the rate is unusable or the sweep is complete.
func ETA(done, total int, rate float64) time.Duration {
	if rate <= 0 || total <= done {
		return 0
	}
	return time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second)
}
