package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcbcast/internal/dist/chaos"
	"rcbcast/internal/scenario"
	"rcbcast/internal/service"
	"rcbcast/internal/sim/sink"
)

func testScenario(name string) scenario.Scenario {
	return scenario.Scenario{
		Name:      name,
		N:         64,
		Adversary: scenario.AdversarySpec{Kind: "full"},
		Budget:    scenario.BudgetSpec{Pool: 1024},
		Overrides: scenario.Overrides{ExtraRounds: 6},
	}
}

// referenceNDJSON is the single-machine byte stream every distributed
// run must reproduce exactly.
func referenceNDJSON(t *testing.T, sc scenario.Scenario, trials int, base uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sc.Stream(context.Background(), 2, base, 0, trials, sink.NewNDJSON(&buf)); err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	return buf.Bytes()
}

// startWorker brings up a real service.Manager behind an httptest
// server — a full in-process worker, store and journals included.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	m, err := service.NewManager(service.Config{Dir: t.TempDir(), Procs: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return srv
}

// TestMergedOutputByteIdentical is the headline invariant: for worker
// counts {1, 2, 4} and deliberately uneven shard sizes, the
// coordinator's merged NDJSON is byte-identical to the single-machine
// run, and the summary folds every trial.
func TestMergedOutputByteIdentical(t *testing.T) {
	sc := testScenario("dist-identity")
	const trials, baseSeed = 37, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	for _, workers := range []int{1, 2, 4} {
		for _, shardSize := range []int{5, 16, 64} { // 5 leaves a ragged tail; 64 > trials
			t.Run(fmt.Sprintf("workers=%d/shard=%d", workers, shardSize), func(t *testing.T) {
				urls := make([]string, workers)
				for i := range urls {
					urls[i] = startWorker(t).URL
				}
				c, err := New(Config{Workers: urls, ShardSize: shardSize, Logf: t.Logf})
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				sum, err := c.Run(context.Background(), sc, trials, baseSeed, &got)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("merged output differs from single-machine run:\n got %d bytes\nwant %d bytes", got.Len(), len(want))
				}
				if sum.Trials != trials {
					t.Fatalf("summary folded %d trials, want %d", sum.Trials, trials)
				}
				m := c.Metrics()
				if m.MergedTrials != trials || m.Shards[phaseDone] != m.TotalShards {
					t.Fatalf("metrics after completion: %+v", m)
				}
			})
		}
	}
}

// TestSummaryMatchesSequentialFold checks the merged summary against a
// sequential fold of the reference records (tolerantly for mean/var —
// Chan-merge is algebraically exact but floating-point rounding
// differs; exactly for n/min/max).
func TestSummaryMatchesSequentialFold(t *testing.T) {
	sc := testScenario("dist-summary")
	const trials, baseSeed = 24, uint64(1)
	srv := startWorker(t)
	c, err := New(Config{Workers: []string{srv.URL}, ShardSize: 7, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sum, err := c.Run(context.Background(), sc, trials, baseSeed, &out)
	if err != nil {
		t.Fatal(err)
	}

	seq := &Summary{}
	for _, line := range bytes.Split(bytes.TrimSpace(referenceNDJSON(t, sc, trials, baseSeed)), []byte("\n")) {
		var rec sink.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		seq.add(&rec)
	}
	if sum.Trials != seq.Trials || sum.CompletedRate != seq.CompletedRate {
		t.Fatalf("trials/completed: got %d/%v want %d/%v", sum.Trials, sum.CompletedRate, seq.Trials, seq.CompletedRate)
	}
	if sum.Rounds.N() != seq.Rounds.N() || sum.Rounds.Min() != seq.Rounds.Min() || sum.Rounds.Max() != seq.Rounds.Max() {
		t.Fatalf("rounds n/min/max diverge: got %d/%v/%v", sum.Rounds.N(), sum.Rounds.Min(), sum.Rounds.Max())
	}
	if d := math.Abs(sum.Rounds.Mean() - seq.Rounds.Mean()); d > 1e-9*math.Abs(seq.Rounds.Mean()) {
		t.Fatalf("rounds mean diverges by %g", d)
	}
}

// TestRetrySkipsReplayedPrefix drops a shard's first result stream
// mid-shard (via the chaos proxy); the retry reattaches, the replayed
// lines are skipped, and the merged bytes still match the
// single-machine run exactly.
func TestRetrySkipsReplayedPrefix(t *testing.T) {
	sc := testScenario("dist-retry")
	const trials, baseSeed = 12, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	backend := startWorker(t)
	proxy := chaos.NewProxy(backend.URL)
	proxy.CutResults(0, 2) // first result stream dies after two lines
	front := httptest.NewServer(proxy)
	defer front.Close()

	c, err := New(Config{
		Workers:   []string{front.URL},
		ShardSize: 6,
		Backoff:   10 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	sum, err := c.Run(context.Background(), sc, trials, baseSeed, &got)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("merged output differs after a mid-shard stream drop")
	}
	if sum.Trials != trials {
		t.Fatalf("summary folded %d trials, want %d", sum.Trials, trials)
	}
	if c.Metrics().Retries < 1 {
		t.Fatal("expected at least one recorded retry")
	}
}

// TestPermanentRejectionFailsFast: a worker's 400 means the submission
// itself is bad — the run must fail without burning MaxAttempts.
func TestPermanentRejectionFailsFast(t *testing.T) {
	var submits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		http.Error(w, `{"error":"no"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	c, err := New(Config{Workers: []string{srv.URL}, ShardSize: 4, MaxAttempts: 50, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err = c.Run(context.Background(), testScenario("dist-reject"), 8, 1, &out)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("Run error = %v, want permanent rejection", err)
	}
	if n := submits.Load(); n > 2 {
		t.Fatalf("made %d submit attempts, want fail-fast", n)
	}
}

// TestUnreachableWorkerExhaustsAttempts: with every worker down the
// sweep fails after MaxAttempts rather than hanging.
func TestUnreachableWorkerExhaustsAttempts(t *testing.T) {
	c, err := New(Config{
		Workers:     []string{"http://127.0.0.1:1"}, // reserved port: connection refused
		ShardSize:   4,
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), testScenario("dist-down"), 8, 1, &out)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "failed 3 attempts") {
			t.Fatalf("Run error = %v, want attempt exhaustion", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung with an unreachable worker")
	}
}

// TestSchedulerWindowGate pins the reorder-window discipline directly:
// no shard beyond frontier+window is ever claimable, the frontier shard
// always is, and requeued shards are claimed lowest-first.
func TestSchedulerWindowGate(t *testing.T) {
	ctx := context.Background()
	s := newSched(10, 2, 0)

	a, ok, err := s.claim(ctx)
	if err != nil || !ok || a != 0 {
		t.Fatalf("first claim = %d,%v,%v", a, ok, err)
	}
	b, _, _ := s.claim(ctx)
	if b != 1 {
		t.Fatalf("second claim = %d, want 1", b)
	}
	// Window of 2 with frontier 0: shard 2 must NOT be claimable yet.
	blocked := make(chan int, 1)
	go func() {
		idx, _, _ := s.claim(ctx)
		blocked <- idx
	}()
	select {
	case idx := <-blocked:
		t.Fatalf("claimed shard %d beyond the window", idx)
	case <-time.After(50 * time.Millisecond):
	}
	s.markDone() // shard 0 buffered
	s.advance()  // and merged: frontier 1 → shard 2 claimable
	select {
	case idx := <-blocked:
		if idx != 2 {
			t.Fatalf("unblocked claim = %d, want 2", idx)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("claim stayed blocked after the window advanced")
	}
	// A requeued low shard outranks pending higher ones.
	s.requeue(1)
	if idx, _, _ := s.claim(ctx); idx != 1 {
		t.Fatalf("after requeue claim = %d, want 1", idx)
	}

	// Cancellation unblocks a waiting claim.
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		s2 := newSched(1, 1, 0)
		s2.claim(cctx) // takes shard 0
		_, _, err := s2.claim(cctx)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled claim returned no error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled claim stayed blocked")
	}
}

// TestContextCancelAbortsRun: canceling the caller's context stops a
// run against a worker that never produces output.
func TestContextCancelAbortsRun(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"id":"j0000000000000000"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		<-r.Context().Done() // stream that never sends a byte
	}))
	defer hang.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	c, err := New(Config{Workers: []string{hang.URL}, ShardSize: 4, StallTimeout: time.Hour, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer wg.Done()
		_, runErr = c.Run(ctx, testScenario("dist-cancel"), 8, 1, &bytes.Buffer{})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop on context cancel")
	}
	if runErr == nil {
		t.Fatal("canceled Run returned nil error")
	}
}
