package stats

import (
	"math"
	"sort"
	"testing"

	"rcbcast/internal/rng"
)

func sample(n int, seed uint64) []float64 {
	st := rng.New(seed, 42)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = st.NormFloat64()*3 + 10
	}
	return xs
}

func TestAccMatchesSummarize(t *testing.T) {
	xs := sample(1000, 1)
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	s := Summarize(xs)
	if a.N() != int64(s.N) {
		t.Fatalf("N: %d vs %d", a.N(), s.N)
	}
	const tol = 1e-9
	if math.Abs(a.Mean()-s.Mean) > tol {
		t.Fatalf("mean: %v vs %v", a.Mean(), s.Mean)
	}
	if math.Abs(a.Std()-s.Std) > tol {
		t.Fatalf("std: %v vs %v", a.Std(), s.Std)
	}
	if a.Min() != s.Min || a.Max() != s.Max {
		t.Fatalf("extrema: [%v, %v] vs [%v, %v]", a.Min(), a.Max(), s.Min, s.Max)
	}
	if math.Abs(a.Sum()-a.Mean()*1000) > tol {
		t.Fatalf("sum inconsistent: %v", a.Sum())
	}
}

// TestAccMerge asserts the defining property: merging shard accumulators
// equals accumulating the concatenated sample.
func TestAccMerge(t *testing.T) {
	xs := sample(997, 2) // odd length: uneven shards
	var whole Acc
	for _, x := range xs {
		whole.Add(x)
	}
	for _, shards := range []int{2, 3, 10} {
		var merged Acc
		for s := 0; s < shards; s++ {
			var part Acc
			for i := s; i < len(xs); i += shards {
				part.Add(xs[i])
			}
			merged.Merge(part)
		}
		if merged.N() != whole.N() {
			t.Fatalf("shards=%d: N %d vs %d", shards, merged.N(), whole.N())
		}
		if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
			t.Fatalf("shards=%d: mean %v vs %v", shards, merged.Mean(), whole.Mean())
		}
		if math.Abs(merged.Std()-whole.Std()) > 1e-9 {
			t.Fatalf("shards=%d: std %v vs %v", shards, merged.Std(), whole.Std())
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("shards=%d: extrema diverge", shards)
		}
	}
}

func TestAccMergeEmpty(t *testing.T) {
	var a, b Acc
	a.Add(5)
	a.Merge(b) // no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merging an empty accumulator must not change a")
	}
	b.Merge(a) // adopt
	if b.N() != 1 || b.Mean() != 5 || b.Min() != 5 || b.Max() != 5 {
		t.Fatal("empty accumulator must adopt the merged one")
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Mean() != 0 || a.Std() != 0 || a.Min() != 0 || a.Max() != 0 || a.Sum() != 0 {
		t.Fatal("zero-value accumulator must report zeros")
	}
}

// TestAccMergePartitionProperty is the distribution-layer contract
// quick-checked: folding any partition of a trial set shard by shard,
// merging the shard accumulators in any order, equals the sequential
// fold — exactly for n/min/max (integer and comparison arithmetic),
// and to tight relative tolerance for mean and variance (Chan et al.'s
// parallel combination is algebraically exact; only float rounding
// differs with the fold tree).
func TestAccMergePartitionProperty(t *testing.T) {
	approx := func(got, want, rtol float64) bool {
		return math.Abs(got-want) <= rtol*math.Max(1, math.Abs(want))
	}
	st := rng.New(7, 99)
	for trial := 0; trial < 200; trial++ {
		xs := sample(1+int(st.Uint64()%257), st.Uint64())
		var seq Acc
		for _, x := range xs {
			seq.Add(x)
		}

		// Cut [0,len) into 1..12 random contiguous shards.
		k := 1 + int(st.Uint64()%12)
		cuts := map[int]bool{0: true, len(xs): true}
		for len(cuts) < k+1 && len(cuts) < len(xs)+1 {
			cuts[1+int(st.Uint64()%uint64(len(xs)))] = true
		}
		bounds := make([]int, 0, len(cuts))
		for c := range cuts {
			bounds = append(bounds, c)
		}
		sort.Ints(bounds)
		shards := make([]Acc, 0, len(bounds)-1)
		for i := 1; i < len(bounds); i++ {
			var a Acc
			for _, x := range xs[bounds[i-1]:bounds[i]] {
				a.Add(x)
			}
			shards = append(shards, a)
		}

		// Merge in a random order.
		order := make([]int, len(shards))
		for i := range order {
			order[i] = i
		}
		for i := len(order) - 1; i > 0; i-- {
			j := int(st.Uint64() % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		var merged Acc
		for _, i := range order {
			merged.Merge(shards[i])
		}

		if merged.N() != seq.N() || merged.Min() != seq.Min() || merged.Max() != seq.Max() {
			t.Fatalf("trial %d: n/min/max diverge: %d/%v/%v vs %d/%v/%v",
				trial, merged.N(), merged.Min(), merged.Max(), seq.N(), seq.Min(), seq.Max())
		}
		if !approx(merged.Mean(), seq.Mean(), 1e-9) {
			t.Fatalf("trial %d: mean %v vs %v (%d shards)", trial, merged.Mean(), seq.Mean(), len(shards))
		}
		if !approx(merged.Var(), seq.Var(), 1e-8) {
			t.Fatalf("trial %d: var %v vs %v (%d shards)", trial, merged.Var(), seq.Var(), len(shards))
		}
		if !approx(merged.Sum(), seq.Sum(), 1e-9) {
			t.Fatalf("trial %d: sum %v vs %v", trial, merged.Sum(), seq.Sum())
		}
	}
}
