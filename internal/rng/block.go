package rng

import "math"

// This file is the draw-throughput side of the batched engine kernel.
//
// Engine profiles put the geometric skip draw — one uniform, one
// natural log, one division, one floor — at roughly two thirds of a
// whole protocol run, with math.Log alone above a quarter. The draws of
// one schedule are serial in the scalar engine: each skip is consumed
// before the next is drawn, so the log's ~dozen-cycle dependency chain
// and the division's latency are paid in full per event. A schedule's
// stream is private and re-keyed (Reseed) before every use, though, so
// drawing *ahead* is free: GeometricBlockLnQ prefetches a block of
// draws and evaluates their logs four lanes at a time, letting the
// out-of-order core overlap what the scalar loop serializes. Each
// individual draw performs exactly the float64 operations of
// GeometricLnQ, so a block is bit-for-bit the sequence of scalar draws
// (pinned by TestGeometricBlockMatchesScalar).

// Coefficients of the fdlibm natural-log kernel, identical to the ones
// the standard library evaluates (math/log.go and the amd64 assembly
// implement the same operation sequence).
const (
	ln2Hi = 6.93147180369123816490e-01 /* 3fe62e42 fee00000 */
	ln2Lo = 1.90821492927058770002e-10 /* 3dea39ef 35793c76 */
	logL1 = 6.666666666666735130e-01   /* 3FE55555 55555593 */
	logL2 = 3.999999999940941908e-01   /* 3FD99999 9997FA04 */
	logL3 = 2.857142874366239149e-01   /* 3FD24924 94229359 */
	logL4 = 2.222219843214978396e-01   /* 3FCC71C5 1D8E78AF */
	logL5 = 1.818357216161805012e-01   /* 3FC74664 96CB03DE */
	logL6 = 1.531383769920937332e-01   /* 3FC39A09 D078C69F */
	logL7 = 1.479819860511658591e-01   /* 3FC2F112 DF3E5244 */
)

// logPortable evaluates the fdlibm natural log for a positive, finite,
// normal argument — the entire domain the uniform draws inhabit
// ([2⁻⁵³, 1)). The operation sequence matches the standard library's,
// so on targets whose math.Log performs plain (unfused) IEEE arithmetic
// the results are bit-identical; useLogPortable verifies exactly that
// at init and routes the block draw through math.Log wherever it does
// not hold.
func logPortable(x float64) float64 {
	f1, ki := math.Frexp(x)
	if f1 < math.Sqrt2/2 {
		f1 *= 2
		ki--
	}
	f := f1 - 1
	k := float64(ki)
	s := f / (2 + f)
	s2 := s * s
	s4 := s2 * s2
	t1 := s2 * (logL1 + s4*(logL3+s4*(logL5+s4*logL7)))
	t2 := s4 * (logL2 + s4*(logL4+s4*logL6))
	R := t1 + t2
	hfsq := 0.5 * f * f
	return k*ln2Hi - ((hfsq - (s*(hfsq+R) + k*ln2Lo)) - f)
}

// sqrt2over2Mant is the mantissa field of √2/2 (bits
// 0x3FE6A09E667F3BCD): with the exponent pinned to the Frexp range
// [0.5, 1), comparing mantissas IS comparing values, which turns the
// kernel's "below √2/2" adjustment into integer arithmetic.
const sqrt2over2Mant = 0x3FE6A09E667F3BCD & (1<<52 - 1)

// reduce performs Frexp plus the fdlibm √2/2 adjustment for a positive
// normal argument, branch-free: the adjustment predicate becomes a
// 0-or-1 word steering the constructed exponent, because a ~50/50
// data-dependent branch per lane (what the naive translation compiles
// to) costs more in mispredictions than the whole polynomial. The
// (f, k) pair produced is bit-identical to the branchy reduction:
// exponent surgery on the bits is the exact *2, and k is exact integer
// arithmetic.
func reduce(x float64) (f float64, k float64) {
	b := math.Float64bits(x)
	m := b & (1<<52 - 1)
	lt := (m - sqrt2over2Mant) >> 63 // 1 when mantissa < √2/2's, else 0
	f = math.Float64frombits((0x3FE+lt)<<52|m) - 1
	k = float64(int(b>>52) - 1022 - int(lt))
	return f, k
}

// log4Portable evaluates logPortable on four independent arguments with
// the lanes interleaved, exposing the instruction-level parallelism the
// serial draw loop cannot: four polynomial chains and four divisions in
// flight at once instead of one.
func log4Portable(x0, x1, x2, x3 float64) (l0, l1, l2, l3 float64) {
	f0, kf0 := reduce(x0)
	f1, kf1 := reduce(x1)
	f2, kf2 := reduce(x2)
	f3, kf3 := reduce(x3)
	s0 := f0 / (2 + f0)
	s1 := f1 / (2 + f1)
	s2v := f2 / (2 + f2)
	s3 := f3 / (2 + f3)
	s20, s21, s22, s23 := s0*s0, s1*s1, s2v*s2v, s3*s3
	s40, s41, s42, s43 := s20*s20, s21*s21, s22*s22, s23*s23
	t10 := s20 * (logL1 + s40*(logL3+s40*(logL5+s40*logL7)))
	t11 := s21 * (logL1 + s41*(logL3+s41*(logL5+s41*logL7)))
	t12 := s22 * (logL1 + s42*(logL3+s42*(logL5+s42*logL7)))
	t13 := s23 * (logL1 + s43*(logL3+s43*(logL5+s43*logL7)))
	t20 := s40 * (logL2 + s40*(logL4+s40*logL6))
	t21 := s41 * (logL2 + s41*(logL4+s41*logL6))
	t22 := s42 * (logL2 + s42*(logL4+s42*logL6))
	t23 := s43 * (logL2 + s43*(logL4+s43*logL6))
	R0, R1, R2, R3 := t10+t20, t11+t21, t12+t22, t13+t23
	h0, h1, h2, h3 := 0.5*f0*f0, 0.5*f1*f1, 0.5*f2*f2, 0.5*f3*f3
	l0 = kf0*ln2Hi - ((h0 - (s0*(h0+R0) + kf0*ln2Lo)) - f0)
	l1 = kf1*ln2Hi - ((h1 - (s1*(h1+R1) + kf1*ln2Lo)) - f1)
	l2 = kf2*ln2Hi - ((h2 - (s2v*(h2+R2) + kf2*ln2Lo)) - f2)
	l3 = kf3*ln2Hi - ((h3 - (s3*(h3+R3) + kf3*ln2Lo)) - f3)
	return
}

// useLogPortable gates the portable log kernel on a start-up
// self-check: a few thousand uniforms from the draw domain must agree
// bit-for-bit with math.Log. On targets where the check fails (say, a
// compiler that contracts the kernel's multiply-adds differently than
// it does the standard library's), block draws fall back to math.Log —
// slower, but identity with the scalar oracle is never at risk.
var useLogPortable = func() bool {
	sm := uint64(0x0ddc0ffeebadf00d)
	for i := 0; i < 4096; i++ {
		u := float64(splitMix64(&sm)>>11) * 0x1p-53
		if u == 0 {
			u = 0x1p-53
		}
		if logPortable(u) != math.Log(u) {
			return false
		}
	}
	// Cover the smallest uniform (the u == 0 nudge) and the Frexp
	// adjustment boundary explicitly.
	for _, u := range []float64{0x1p-53, 0.5, math.Sqrt2 / 2, 0.9999999999999999} {
		if logPortable(u) != math.Log(u) {
			return false
		}
	}
	return true
}()

// u53 draws the next uniform exactly as GeometricLnQ does: the open-coded
// xoshiro step, the 53-bit conversion, and the zero nudge.
func (st *Stream) u53() float64 {
	s := &st.s
	raw := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	u := float64(raw>>11) * 0x1p-53
	if u == 0 {
		u = 0x1p-53
	}
	return u
}

// geoFromLog finishes one geometric draw from its log value. The
// quotient is non-negative (both ln u and lnQ are negative), so integer
// truncation IS the scalar path's Floor, and the sentinel comparison
// commutes with Floor for an integral bound — the results are
// bit-identical to GeometricLnQ's Floor-then-convert with one float op
// and a branchy call fewer per draw.
func geoFromLog(l, lnQ float64) int {
	q := l / lnQ
	if q >= float64(math.MaxInt64/2) || math.IsNaN(q) {
		return math.MaxInt
	}
	return int(q)
}

// GeometricBlockLnQ fills dst with len(dst) consecutive draws of
// GeometricLnQ(lnQ): the d-th element equals the value the d-th scalar
// call would have returned, and the stream is left in the state those
// scalar calls would leave it. It requires 0 < p < 1 (lnQ < 0), exactly
// as GeometricLnQ. Blocks of four are evaluated through the interleaved
// log kernel; the remainder takes the scalar path.
func (st *Stream) GeometricBlockLnQ(lnQ float64, dst []int) {
	st.ensure()
	i := 0
	if useGeoBlock8 && len(dst) >= 8 {
		invLnQ := 1 / lnQ
		for ; i+8 <= len(dst); i += 8 {
			geoBlock8Asm(&st.s, (*[8]int)(dst[i:i+8]), lnQ, invLnQ)
		}
	}
	for ; i+4 <= len(dst); i += 4 {
		// The uniforms are drawn serially (the xoshiro state is a
		// dependency chain) but cheaply; the expensive log tail is what
		// the four-lane evaluation overlaps.
		u0 := st.u53()
		u1 := st.u53()
		u2 := st.u53()
		u3 := st.u53()
		var l0, l1, l2, l3 float64
		if useLogPortable {
			l0, l1, l2, l3 = log4Portable(u0, u1, u2, u3)
		} else {
			l0, l1, l2, l3 = math.Log(u0), math.Log(u1), math.Log(u2), math.Log(u3)
		}
		dst[i] = geoFromLog(l0, lnQ)
		dst[i+1] = geoFromLog(l1, lnQ)
		dst[i+2] = geoFromLog(l2, lnQ)
		dst[i+3] = geoFromLog(l3, lnQ)
	}
	for ; i < len(dst); i++ {
		dst[i] = st.GeometricLnQ(lnQ)
	}
}
