package scenario

import (
	"fmt"

	"rcbcast/internal/sim"
)

// Shard selects the contiguous trial range [Lo, Hi) of a sweep — the
// unit of distribution for multi-machine runs (internal/dist) and the
// rcexp -shard mode. A shard is meaningful only relative to a sweep
// spec: the scenario, the sweep trial count, and the base seed stay
// those of the *whole* sweep, and the shard's trials keep their
// sweep-global seeds (sim.SweepSeed(base, point, t) for t in [Lo, Hi))
// and sweep-global trial indices. That is what makes any partition of a
// sweep into shards recompose byte-identically: concatenating the
// shards' NDJSON outputs in shard order reproduces the single-machine
// run exactly.
//
// The zero Shard means "the whole sweep" — [0, trials) without shard
// semantics.
type Shard struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// IsZero reports whether the shard is the whole-sweep zero value.
func (sh Shard) IsZero() bool { return sh == Shard{} }

// Len returns the shard's trial count.
func (sh Shard) Len() int { return sh.Hi - sh.Lo }

// String renders the half-open range, e.g. "[100,200)".
func (sh Shard) String() string { return fmt.Sprintf("[%d,%d)", sh.Lo, sh.Hi) }

// Validate reports the first violated constraint of a shard of a sweep
// with `trials` trials, or nil. The zero shard is always valid; a
// non-zero shard must be a non-empty sub-range of [0, trials).
func (sh Shard) Validate(trials int) error {
	switch {
	case sh.IsZero():
		return nil
	case sh.Lo < 0:
		return fmt.Errorf("scenario: shard lo must be >= 0 (got %d)", sh.Lo)
	case sh.Hi <= sh.Lo:
		return fmt.Errorf("scenario: shard %s is empty (hi must exceed lo)", sh)
	case sh.Hi > trials:
		return fmt.Errorf("scenario: shard %s exceeds the sweep's %d trials", sh, trials)
	}
	return nil
}

// CutShard returns the i-th of n contiguous, near-equal shards of a
// sweep with `trials` trials — the rcexp -shard i/N partition. The
// shards cover [0, trials) exactly: shard i is
// [i·trials/n, (i+1)·trials/n), so uneven divisions spread the
// remainder over the later shards. An empty cut (more shards than
// trials) is an error rather than a silent no-op shard.
func CutShard(trials, i, n int) (Shard, error) {
	if n <= 0 {
		return Shard{}, fmt.Errorf("scenario: shard count must be positive (got %d)", n)
	}
	if i < 0 || i >= n {
		return Shard{}, fmt.Errorf("scenario: shard index %d out of range [0, %d)", i, n)
	}
	sh := Shard{Lo: i * trials / n, Hi: (i + 1) * trials / n}
	if sh.Len() == 0 {
		return Shard{}, fmt.Errorf("scenario: shard %d/%d of %d trials is empty — use at most %d shards", i, n, trials, trials)
	}
	return sh, nil
}

// ShardSpecs returns the trial specs for one shard of a Monte-Carlo
// sweep point: trials [sh.Lo, sh.Hi) of the `trials`-trial sweep,
// seeded with the sweep-global sim.SweepSeed(base, point, t) — the
// exact specs TrialSpecs(base, point, trials)[sh.Lo:sh.Hi] would
// produce. The zero shard selects the whole sweep.
func (s Scenario) ShardSpecs(base uint64, point, trials int, sh Shard) ([]sim.TrialSpec, error) {
	if err := sh.Validate(trials); err != nil {
		return nil, err
	}
	if sh.IsZero() {
		sh = Shard{Lo: 0, Hi: trials}
	}
	proto, err := s.TrialSpec(0)
	if err != nil {
		return nil, err
	}
	specs := make([]sim.TrialSpec, sh.Len())
	for t := range specs {
		specs[t] = proto
		specs[t].Seed = sim.SweepSeed(base, point, sh.Lo+t)
	}
	return specs, nil
}
