package scenario

import (
	"context"
	"reflect"
	"testing"

	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
)

// fuzzCollect gathers streamed results for the differential below.
type fuzzCollect struct{ rs []*engine.Result }

func (c *fuzzCollect) Trial(i int, r *engine.Result) error {
	c.rs = append(c.rs, r)
	return nil
}
func (c *fuzzCollect) Flush() error { return nil }

// FuzzBatchStreamMatchesScalar feeds arbitrary scenario JSON through
// the scalar stream and the batched lockstep kernel and requires
// identical results: whatever protocol instance, topology, adversary,
// and budget the fuzzer assembles, StreamBatch must reproduce the
// scalar engine bit for bit at every batch width. Inputs the scalar
// stream itself rejects (or fails on) are skipped — the kernel's
// contract covers exactly the runs the scalar engine completes.
func FuzzBatchStreamMatchesScalar(f *testing.F) {
	for _, seed := range []string{
		`{"n":48,"adversary":{"kind":"full"},"budget":{"pool":1024},"seed":7}`,
		`{"n":48,"topology":{"kind":"grid","reach":2},"adversary":{"kind":"composite","parts":[{"kind":"full"},{"kind":"spoofer","p":0.3}]},"budget":{"pool":512},"seed":9}`,
		`{"n":48,"topology":{"kind":"gilbert","radius":0.3},"adversary":{"kind":"random","p":0.4},"budget":{"pool":512},"seed":11}`,
		`{"n":64,"k":3,"decoy":true,"adversary":{"kind":"bursty","burst":16,"gap":16},"budget":{"model_c":4,"model_f":0.05},"seed":3}`,
		`{"n":32,"paper":true,"quiet":"fraction","adversary":{"kind":"sweep","fraction":0.75},"budget":{"pool":256},"reactive":true,"seed":5}`,
	} {
		f.Add([]byte(seed), uint8(8))
	}
	f.Fuzz(func(t *testing.T, data []byte, widthByte uint8) {
		sc, err := Decode(data)
		if err != nil {
			return
		}
		// Bound the run so the fuzzer cannot assemble an hours-long
		// trial: small networks, a short round window, and a phase-slot
		// cap. The bounds apply identically to both streams, so the
		// differential is untouched.
		if sc.N > 96 || sc.K > 4 || sc.Overrides.StartRound > 8 {
			return
		}
		sc.Overrides.MaxRound = 0
		sc.Overrides.ExtraRounds = 2
		if sc.Validate() != nil {
			return
		}
		width := 1 + int(widthByte%8)
		trials := width + 3 // at least one full batch plus a remainder group
		specs, err := sc.TrialSpecs(42, 0, trials)
		if err != nil {
			return
		}
		for i := range specs {
			prev := specs[i].Configure
			specs[i].Configure = func(o *engine.Options) {
				if prev != nil {
					prev(o)
				}
				o.MaxPhaseSlots = 1 << 22
			}
		}
		scalar := &fuzzCollect{}
		if err := sim.Stream(context.Background(), 1, specs, scalar); err != nil {
			return // the scalar oracle itself rejects this input
		}
		batched := &fuzzCollect{}
		if err := sim.StreamBatch(context.Background(), 1, width, specs, batched); err != nil {
			t.Fatalf("scalar stream succeeded but width-%d batch failed: %v", width, err)
		}
		if len(batched.rs) != len(scalar.rs) {
			t.Fatalf("width %d delivered %d trials, scalar %d", width, len(batched.rs), len(scalar.rs))
		}
		for i := range scalar.rs {
			if !reflect.DeepEqual(batched.rs[i], scalar.rs[i]) {
				t.Fatalf("width %d trial %d diverges from scalar engine:\nbatch:  %+v\nscalar: %+v",
					width, i, batched.rs[i], scalar.rs[i])
			}
		}
	})
}
