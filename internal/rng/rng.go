// Package rng provides deterministic, splittable pseudo-random streams.
//
// Every random decision in the simulator is drawn from a Stream that is
// keyed by a path of integers, e.g. (seed, actorID, round, phase, purpose).
// Two engines that derive the same keyed stream draw exactly the same
// sequence, which is what makes the sequential event-driven engine and the
// goroutine-per-device actor engine bit-for-bit equivalent (DESIGN.md §5.1).
//
// The generator is xoshiro256** seeded through SplitMix64, following the
// reference construction by Blackman and Vigna. It is not cryptographically
// secure; it is a simulation RNG chosen for speed, equidistribution, and
// cheap splitting.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both as a seeding function and as a key mixer.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix collapses a key path into a single 64-bit value. Mixing is
// order-sensitive: Mix(1, 2) != Mix(2, 1). An empty path yields a fixed
// nonzero constant so that a zero-value key still produces a usable stream.
func Mix(parts ...uint64) uint64 {
	state := uint64(0x853c49e6748fea9b)
	for _, p := range parts {
		state ^= splitMix64(&state) ^ p
		// Re-mix after the xor so that consecutive zero parts still
		// perturb the state differently at each position.
		_ = splitMix64(&state)
	}
	return splitMix64(&state)
}

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded from the zero key; prefer New or Derive for clarity.
type Stream struct {
	s    [4]uint64
	seed uint64 // the mixed key this stream was created from
	init bool
}

// New returns a stream keyed by seed and an optional path. Streams created
// with the same arguments produce identical sequences.
func New(seed uint64, path ...uint64) *Stream {
	key := seed
	if len(path) > 0 {
		key = Mix(append([]uint64{seed}, path...)...)
	}
	st := &Stream{}
	st.reseed(key)
	return st
}

// reseed initializes the xoshiro state from a single 64-bit key via
// SplitMix64, as recommended by the xoshiro authors.
func (st *Stream) reseed(key uint64) {
	sm := key
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	st.seed = key
	st.init = true
}

// Derive returns a new independent stream keyed by this stream's own key
// plus the given sub-path. Deriving does not consume randomness from the
// parent, so derivation order never perturbs parent draws.
func (st *Stream) Derive(path ...uint64) *Stream {
	st.ensure()
	return New(st.seed, path...)
}

// Seed reports the mixed key the stream was created from.
func (st *Stream) Seed() uint64 {
	st.ensure()
	return st.seed
}

func (st *Stream) ensure() {
	if !st.init {
		st.reseed(0)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (st *Stream) Uint64() uint64 {
	st.ensure()
	s := &st.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (st *Stream) Float64() float64 {
	return float64(st.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Probabilities outside [0, 1]
// are clamped: p <= 0 is always false, p >= 1 always true (no draw is
// consumed in either degenerate case, keeping streams aligned across
// engines that can skip certain trials analytically).
func (st *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return st.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless rejection method keeps the result unbiased.
func (st *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := st.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (st *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := st.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials, i.e. a sample from Geometric(p) with
// support {0, 1, 2, ...}. It is the workhorse of event-driven slot
// simulation: a device that acts each slot with probability p next acts
// after Geometric(p) silent slots.
//
// p >= 1 returns 0. p <= 0 returns math.MaxInt (never). The inversion
// formula floor(ln U / ln(1-p)) is exact for the geometric distribution.
func (st *Stream) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt
	}
	u := st.Float64()
	// Guard against u == 0, for which log is -inf and the sample would
	// round to +inf anyway; resample cheaply by nudging to the smallest
	// representable uniform instead (probability 2^-53 event).
	if u == 0 {
		u = 0x1p-53
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g >= float64(math.MaxInt64/2) || math.IsNaN(g) {
		return math.MaxInt
	}
	return int(g)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inversion. Used by statistical tests and workload generators.
func (st *Stream) ExpFloat64() float64 {
	u := st.Float64()
	if u == 0 {
		u = 0x1p-53
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal sample using the Box-Muller
// transform (the polar variant is avoided to keep draw counts fixed at two
// per call, preserving cross-engine stream alignment).
func (st *Stream) NormFloat64() float64 {
	u1 := st.Float64()
	if u1 == 0 {
		u1 = 0x1p-53
	}
	u2 := st.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
