package scenario

import (
	"strings"
	"testing"
)

func shardTestScenario() Scenario {
	return Scenario{
		Name:      "shard-test",
		N:         32,
		Adversary: AdversarySpec{Kind: "full"},
		Budget:    BudgetSpec{Pool: 256},
	}
}

func TestShardValidate(t *testing.T) {
	cases := []struct {
		sh     Shard
		trials int
		ok     bool
	}{
		{Shard{}, 10, true}, // zero shard = whole sweep
		{Shard{Lo: 0, Hi: 10}, 10, true},
		{Shard{Lo: 3, Hi: 7}, 10, true},
		{Shard{Lo: -1, Hi: 5}, 10, false},
		{Shard{Lo: 5, Hi: 5}, 10, false},
		{Shard{Lo: 7, Hi: 3}, 10, false},
		{Shard{Lo: 0, Hi: 11}, 10, false},
	}
	for _, tc := range cases {
		err := tc.sh.Validate(tc.trials)
		if (err == nil) != tc.ok {
			t.Errorf("Shard%s.Validate(%d) = %v, want ok=%v", tc.sh, tc.trials, err, tc.ok)
		}
	}
	if s := (Shard{Lo: 2, Hi: 5}).String(); s != "[2,5)" {
		t.Fatalf("String() = %q", s)
	}
}

func TestCutShard(t *testing.T) {
	// The i/N cuts tile [0, trials) exactly, in order.
	for _, trials := range []int{1, 3, 7, 10, 100} {
		for n := 1; n <= trials; n++ {
			next := 0
			for i := 0; i < n; i++ {
				sh, err := CutShard(trials, i, n)
				if err != nil {
					t.Fatalf("CutShard(%d, %d, %d): %v", trials, i, n, err)
				}
				if sh.Lo != next || sh.Len() <= 0 {
					t.Fatalf("CutShard(%d, %d, %d) = %s, want start %d", trials, i, n, sh, next)
				}
				next = sh.Hi
			}
			if next != trials {
				t.Fatalf("CutShard(%d, _, %d) covers [0,%d)", trials, n, next)
			}
		}
	}
	for _, tc := range []struct{ trials, i, n int }{
		{10, -1, 3}, {10, 3, 3}, {10, 0, 0}, {3, 0, 5},
	} {
		if _, err := CutShard(tc.trials, tc.i, tc.n); err == nil {
			t.Errorf("CutShard(%d, %d, %d) accepted", tc.trials, tc.i, tc.n)
		}
	}
	// More shards than trials: the empty cut names the usable maximum.
	_, err := CutShard(3, 0, 5)
	if err == nil || !strings.Contains(err.Error(), "at most 3 shards") {
		t.Fatalf("empty cut error = %v", err)
	}
}

// TestShardSpecsSliceOfWhole pins the identity everything distributed
// rests on: ShardSpecs is exactly TrialSpecs[lo:hi] — same seeds, same
// protocol instance — for every shard of the sweep.
func TestShardSpecsSliceOfWhole(t *testing.T) {
	sc := shardTestScenario()
	const base, trials = 99, 11
	whole, err := sc.TrialSpecs(base, 0, trials)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range []Shard{{}, {Lo: 0, Hi: trials}, {Lo: 0, Hi: 4}, {Lo: 4, Hi: 9}, {Lo: 10, Hi: 11}} {
		specs, err := sc.ShardSpecs(base, 0, trials, sh)
		if err != nil {
			t.Fatalf("ShardSpecs(%s): %v", sh, err)
		}
		lo, hi := sh.Lo, sh.Hi
		if sh.IsZero() {
			lo, hi = 0, trials
		}
		if len(specs) != hi-lo {
			t.Fatalf("ShardSpecs(%s) has %d specs, want %d", sh, len(specs), hi-lo)
		}
		for i, spec := range specs {
			if spec.Seed != whole[lo+i].Seed {
				t.Fatalf("shard %s spec %d seed %#x, want %#x", sh, i, spec.Seed, whole[lo+i].Seed)
			}
			if spec.Params != whole[lo+i].Params {
				t.Fatalf("shard %s spec %d params diverge", sh, i)
			}
		}
	}
	if _, err := sc.ShardSpecs(base, 0, trials, Shard{Lo: 5, Hi: 20}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
