package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rcbcast/internal/scenario"
)

// TestRestartResumesInterruptedJob pins the durability contract end to
// end inside the package: a job interrupted mid-run — shut down
// gracefully, then made to look SIGKILLed (record doctored back to
// "running", journal tail torn) — is re-admitted by the next manager,
// resumes from its journaled prefix without any client action, and its
// final results are byte-identical to an uninterrupted run.
func TestRestartResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario("restart-resume")
	const trials = 60
	gate := newTrialGate(5)
	teardown := setWrapSpecs(gate.wrap)

	m1, err := NewManager(Config{Dir: dir, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	m1.Logf = t.Logf
	j, accepted, err := m1.Submit("alice", sc, trials, 1)
	if err != nil || !accepted {
		t.Fatalf("submit: accepted=%v err=%v", accepted, err)
	}
	waitStatus(t, j, "prefix delivered", func(st Status) bool { return st.Done >= 1 })
	gate.waitParked(t)

	// Graceful shutdown while the job is mid-run. Release the gate only
	// after the drain has begun, so the run is guaranteed to end on the
	// canceled context — a checkpointed partial, not a completion.
	closeErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closeErr <- m1.Close(ctx)
	}()
	for m1.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	gate.release()
	if err := <-closeErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	teardown()

	st := j.Status()
	if st.State != StateQueued {
		t.Fatalf("drained job is %s, want queued (requeued for restart)", st.State)
	}
	if st.Done == 0 || st.Done >= trials {
		t.Fatalf("drained job delivered %d trials, want a strict mid-run prefix", st.Done)
	}

	// Make the store look SIGKILLed rather than drained: the record
	// still claims "running" and the journal's last line is torn.
	recPath := filepath.Join(dir, j.ID, "job.json")
	rec, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	doctored := bytes.Replace(rec, []byte(`"state": "queued"`), []byte(`"state": "running"`), 1)
	if bytes.Equal(doctored, rec) {
		t.Fatalf("record did not contain the queued state:\n%s", rec)
	}
	if err := os.WriteFile(recPath, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(filepath.Join(dir, j.ID, "journal.ckpt"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"trial": 9999, "result": {"succ`); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// Restart: the new manager must resume the job on its own.
	m2 := newTestManager(t, Config{Dir: dir, Procs: 2})
	j2, ok := m2.Get(j.ID)
	if !ok {
		t.Fatalf("restarted manager lost job %s", j.ID)
	}
	final := waitStatus(t, j2, "resumed to done", stateIs(StateDone))
	if final.Done != trials {
		t.Fatalf("resumed job done = %d, want %d", final.Done, trials)
	}
	got := readResults(t, j2)
	if want := referenceNDJSON(t, sc, trials, 1); !bytes.Equal(got, want) {
		t.Fatalf("resumed results differ from an uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	if inflight := m2.Metrics().ClientsInFlight; len(inflight) != 0 {
		t.Fatalf("limiter slots leaked after completion: %v", inflight)
	}
}

// TestRestartLoadsTerminalJobs: completed jobs survive a restart as
// history — served, deduped against, not rerun.
func TestRestartLoadsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario("restart-done")
	const trials = 12

	m1, err := NewManager(Config{Dir: dir, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	m1.Logf = t.Logf
	j, _, err := m1.Submit("alice", sc, trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, "done", stateIs(StateDone))
	want := readResults(t, j)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Dir: dir, Procs: 2})
	j2, ok := m2.Get(j.ID)
	if !ok {
		t.Fatal("restarted manager lost the done job")
	}
	if st := j2.Status(); st.State != StateDone || st.Done != trials {
		t.Fatalf("restarted job is %s/%d, want done/%d", st.State, st.Done, trials)
	}
	if got := readResults(t, j2); !bytes.Equal(got, want) {
		t.Fatal("results changed across restart")
	}
	j3, accepted, err := m2.Submit("bob", sc, trials, 1)
	if err != nil || accepted || j3 != j2 {
		t.Fatalf("submit of a done sweep should dedupe: accepted=%v err=%v", accepted, err)
	}
}

// TestForeignJournalFailsTheJob: a journal whose fingerprint belongs to
// a different sweep must fail the job loudly, never silently feed it
// wrong results.
func TestForeignJournalFailsTheJob(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Dir: dir, Procs: 2})

	scA := testScenario("journal-owner")
	jA, _, err := m.Submit("alice", scA, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, jA, "done", stateIs(StateDone))

	// Plant A's journal where the next sweep's journal belongs. The
	// sweeps must differ in the fingerprinted spec (seed, params, or
	// topology — not just the name), or the journals would rightly
	// interchange.
	scB := testScenario("journal-thief")
	scB.N = 32
	idB, err := jobID(scB, 8, 1, scenario.Shard{})
	if err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(jA.journalPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, idB), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, idB, "journal.ckpt"), journal, 0o644); err != nil {
		t.Fatal(err)
	}

	jB, _, err := m.Submit("alice", scB, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, jB, "failed", stateIs(StateFailed))
	if !strings.Contains(st.Error, "different sweep") {
		t.Fatalf("failure %q does not name the fingerprint mismatch", st.Error)
	}
}

// TestStoreSkipsCorruptRecords: one unreadable record must not take the
// store down.
func TestStoreSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "jbroken"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jbroken", "job.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Dir: dir, Procs: 2})
	j, _, err := m.Submit("alice", testScenario("survives-corruption"), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, "done", stateIs(StateDone))
	if got := len(m.List()); got != 1 {
		t.Fatalf("list holds %d jobs, want 1 (the corrupt record skipped)", got)
	}
}
