module rcbcast

go 1.24
