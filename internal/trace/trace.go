// Package trace provides structured observation of a protocol execution:
// phase boundaries, information spread, terminations, and adversary
// activity. Tracers receive events from the engine in deterministic order
// (phase order, then node-id order within a phase), from a single
// goroutine, regardless of which engine runs the protocol.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
)

// Tracer receives execution events. Implementations need not be
// concurrency-safe: the engine serializes all calls.
type Tracer interface {
	// PhaseStart fires before a phase executes.
	PhaseStart(ph core.Phase)
	// PhaseEnd fires after a phase, with its public outcome.
	PhaseEnd(out adversary.PhaseOutcome)
	// NodeInformed fires for each node that received m this phase.
	NodeInformed(node int, ph core.Phase)
	// NodeTerminated fires for each node that stopped this phase.
	NodeTerminated(node int, informed bool, ph core.Phase)
	// AliceTerminated fires when Alice passes her quiet test.
	AliceTerminated(round int)
	// Done fires once at the end of the run.
	Done()
}

// Nop is a Tracer that ignores everything; embed it to implement only the
// events you care about.
type Nop struct{}

// PhaseStart implements Tracer.
func (Nop) PhaseStart(core.Phase) {}

// PhaseEnd implements Tracer.
func (Nop) PhaseEnd(adversary.PhaseOutcome) {}

// NodeInformed implements Tracer.
func (Nop) NodeInformed(int, core.Phase) {}

// NodeTerminated implements Tracer.
func (Nop) NodeTerminated(int, bool, core.Phase) {}

// AliceTerminated implements Tracer.
func (Nop) AliceTerminated(int) {}

// Done implements Tracer.
func (Nop) Done() {}

// Text writes a human-readable line per event. Per-node events are
// aggregated per phase to keep the output readable at large n.
type Text struct {
	W io.Writer

	informedThisPhase   int
	terminatedThisPhase int
	strandedThisPhase   int
}

// NewText returns a text tracer writing to w.
func NewText(w io.Writer) *Text { return &Text{W: w} }

// PhaseStart implements Tracer.
func (t *Text) PhaseStart(ph core.Phase) {
	t.informedThisPhase, t.terminatedThisPhase, t.strandedThisPhase = 0, 0, 0
	fmt.Fprintf(t.W, "▶ %s\n", ph)
}

// NodeInformed implements Tracer.
func (t *Text) NodeInformed(int, core.Phase) { t.informedThisPhase++ }

// NodeTerminated implements Tracer.
func (t *Text) NodeTerminated(_ int, informed bool, _ core.Phase) {
	if informed {
		t.terminatedThisPhase++
	} else {
		t.strandedThisPhase++
	}
}

// PhaseEnd implements Tracer.
func (t *Text) PhaseEnd(out adversary.PhaseOutcome) {
	fmt.Fprintf(t.W,
		"  sends: alice=%d relays=%d nacks=%d decoys=%d | jam=%d spoof=%d | +informed=%d +done=%d +stranded=%d | informed=%d active=%d\n",
		out.AliceSends, out.NodeDataSends, out.NodeNacks, out.NodeDecoys,
		out.JammedSlots, out.InjectedFrames,
		t.informedThisPhase, t.terminatedThisPhase, t.strandedThisPhase,
		out.InformedAfter, out.ActiveAfter)
}

// AliceTerminated implements Tracer.
func (t *Text) AliceTerminated(round int) {
	fmt.Fprintf(t.W, "✓ alice terminated in round %d\n", round)
}

// Done implements Tracer.
func (t *Text) Done() { fmt.Fprintln(t.W, "■ run complete") }

// JSON writes one NDJSON object per event, suitable for offline
// analysis. The Tracer interface cannot report write failures, so the
// first encode error is recorded instead of discarded: later events
// become no-ops (the stream is already torn) and callers check Err
// after the run — typically right after the engine fires Done.
type JSON struct {
	W   io.Writer
	enc *json.Encoder
	err error
}

// NewJSON returns an NDJSON tracer writing to w.
func NewJSON(w io.Writer) *JSON { return &JSON{W: w, enc: json.NewEncoder(w)} }

// Err returns the first write/encode error, or nil. A non-nil Err means
// the emitted NDJSON is truncated at the failure point.
func (j *JSON) Err() error { return j.err }

type jsonEvent struct {
	Event    string `json:"event"`
	Round    int    `json:"round,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Step     int    `json:"step,omitempty"`
	Sub      int    `json:"sub,omitempty"`
	Node     int    `json:"node,omitempty"`
	Informed bool   `json:"informed,omitempty"`

	AliceSends int   `json:"alice_sends,omitempty"`
	Relays     int   `json:"relays,omitempty"`
	Nacks      int   `json:"nacks,omitempty"`
	Decoys     int   `json:"decoys,omitempty"`
	Jams       int64 `json:"jams,omitempty"`
	Spoofs     int64 `json:"spoofs,omitempty"`
	InformedN  int   `json:"informed_n,omitempty"`
	ActiveN    int   `json:"active_n,omitempty"`
}

func (j *JSON) emit(e jsonEvent) {
	if j.err != nil {
		return
	}
	if j.enc == nil {
		j.enc = json.NewEncoder(j.W)
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = err
	}
}

// PhaseStart implements Tracer.
func (j *JSON) PhaseStart(ph core.Phase) {
	j.emit(jsonEvent{Event: "phase_start", Round: ph.Round, Kind: ph.Kind.String(), Step: ph.Step, Sub: ph.Sub})
}

// PhaseEnd implements Tracer.
func (j *JSON) PhaseEnd(out adversary.PhaseOutcome) {
	j.emit(jsonEvent{
		Event: "phase_end", Round: out.Phase.Round, Kind: out.Phase.Kind.String(),
		Step: out.Phase.Step, Sub: out.Phase.Sub,
		AliceSends: out.AliceSends, Relays: out.NodeDataSends,
		Nacks: out.NodeNacks, Decoys: out.NodeDecoys,
		Jams: out.JammedSlots, Spoofs: out.InjectedFrames,
		InformedN: out.InformedAfter, ActiveN: out.ActiveAfter,
	})
}

// NodeInformed implements Tracer.
func (j *JSON) NodeInformed(node int, ph core.Phase) {
	j.emit(jsonEvent{Event: "node_informed", Node: node, Round: ph.Round, Kind: ph.Kind.String(), Step: ph.Step})
}

// NodeTerminated implements Tracer.
func (j *JSON) NodeTerminated(node int, informed bool, ph core.Phase) {
	j.emit(jsonEvent{Event: "node_terminated", Node: node, Informed: informed, Round: ph.Round})
}

// AliceTerminated implements Tracer.
func (j *JSON) AliceTerminated(round int) {
	j.emit(jsonEvent{Event: "alice_terminated", Round: round})
}

// Done implements Tracer.
func (j *JSON) Done() { j.emit(jsonEvent{Event: "done"}) }

// Multi fans events out to several tracers in order.
type Multi []Tracer

// PhaseStart implements Tracer.
func (m Multi) PhaseStart(ph core.Phase) {
	for _, t := range m {
		t.PhaseStart(ph)
	}
}

// PhaseEnd implements Tracer.
func (m Multi) PhaseEnd(out adversary.PhaseOutcome) {
	for _, t := range m {
		t.PhaseEnd(out)
	}
}

// NodeInformed implements Tracer.
func (m Multi) NodeInformed(node int, ph core.Phase) {
	for _, t := range m {
		t.NodeInformed(node, ph)
	}
}

// NodeTerminated implements Tracer.
func (m Multi) NodeTerminated(node int, informed bool, ph core.Phase) {
	for _, t := range m {
		t.NodeTerminated(node, informed, ph)
	}
}

// AliceTerminated implements Tracer.
func (m Multi) AliceTerminated(round int) {
	for _, t := range m {
		t.AliceTerminated(round)
	}
}

// Done implements Tracer.
func (m Multi) Done() {
	for _, t := range m {
		t.Done()
	}
}

// Counter tallies events; used by tests.
type Counter struct {
	Nop
	Phases, Informed, Terminated, Stranded int
	AliceRound                             int
	DoneCalled                             bool
}

// PhaseStart implements Tracer.
func (c *Counter) PhaseStart(core.Phase) { c.Phases++ }

// NodeInformed implements Tracer.
func (c *Counter) NodeInformed(int, core.Phase) { c.Informed++ }

// NodeTerminated implements Tracer.
func (c *Counter) NodeTerminated(_ int, informed bool, _ core.Phase) {
	if informed {
		c.Terminated++
	} else {
		c.Stranded++
	}
}

// AliceTerminated implements Tracer.
func (c *Counter) AliceTerminated(round int) { c.AliceRound = round }

// Done implements Tracer.
func (c *Counter) Done() { c.DoneCalled = true }

// Compile-time interface checks.
var (
	_ Tracer = Nop{}
	_ Tracer = (*Text)(nil)
	_ Tracer = (*JSON)(nil)
	_ Tracer = Multi{}
	_ Tracer = (*Counter)(nil)
)
