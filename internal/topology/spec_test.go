package topology

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		out  string // String() rendering; "" means same as in
	}{
		{"clique", Spec{Kind: "clique"}, ""},
		{"grid", Spec{Kind: "grid"}, ""},
		{"grid:w=32", Spec{Kind: "grid", Width: 32}, ""},
		{"grid:w=32,reach=2", Spec{Kind: "grid", Width: 32, Reach: 2}, ""},
		{"grid:reach=3", Spec{Kind: "grid", Reach: 3}, ""},
		{"gilbert:r=0.2", Spec{Kind: "gilbert", Radius: 0.2}, ""},
		{"gilbert:r=0.125", Spec{Kind: "gilbert", Radius: 0.125}, ""},
		{" gilbert:r=1 ", Spec{Kind: "gilbert", Radius: 1}, "gilbert:r=1"},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		want := c.out
		if want == "" {
			want = strings.TrimSpace(c.in)
		}
		if got.String() != want {
			t.Fatalf("String() = %q, want %q", got.String(), want)
		}
		back, err := ParseSpec(got.String())
		if err != nil || back != got {
			t.Fatalf("round trip %q -> %q -> %+v (%v)", c.in, got.String(), back, err)
		}
	}
}

func TestZeroSpecIsClique(t *testing.T) {
	var s Spec
	if !s.IsClique() || s.Validate() != nil || s.String() != "clique" {
		t.Fatalf("zero spec: %+v", s)
	}
	topo, err := s.Build(16, 1)
	if err != nil || !topo.Complete() {
		t.Fatalf("zero spec must build the clique: %v", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "torus", "gilbert", "gilbert:r=0", "gilbert:r=3", "gilbert:r=x",
		"grid:r=0.2", "gilbert:w=3", "clique:w=2", "grid:w=-1", "grid:side=3",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) must fail", bad)
		}
	}
}

func TestBuildPerKind(t *testing.T) {
	for _, c := range []struct {
		spec Spec
		name string
	}{
		{Spec{}, "clique"},
		{Spec{Kind: "grid", Width: 8, Reach: 2}, "grid"},
		{Spec{Kind: "gilbert", Radius: 0.3}, "gilbert"},
	} {
		topo, err := c.spec.Build(64, 9)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if topo.Name() != c.name || topo.N() != 64 {
			t.Fatalf("%s built %s/%d", c.name, topo.Name(), topo.N())
		}
	}
	if _, err := (Spec{Kind: "gilbert", Radius: 0.3}).Build(0, 1); err == nil {
		t.Fatal("n = 0 must fail")
	}
	if _, err := (Spec{Kind: "nope"}).Build(8, 1); err == nil {
		t.Fatal("invalid spec must fail Build")
	}
}

func TestKindsListedAndWritten(t *testing.T) {
	var sb strings.Builder
	WriteList(&sb)
	for _, k := range Kinds() {
		if !strings.Contains(sb.String(), k.Name) {
			t.Fatalf("listing missing %q:\n%s", k.Name, sb.String())
		}
	}
}
