package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf strings.Builder
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestCLIBasicRun(t *testing.T) {
	out := runCLI(t, "-n", "128", "-pool", "2048", "-seed", "5")
	for _, want := range []string{"ε-BROADCAST k=2 n=128", "full-jam", "informed", "competitive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIAdversaries(t *testing.T) {
	for _, adv := range []string{"null", "random", "bursty", "blocker", "partition", "spoofer", "reactive"} {
		out := runCLI(t, "-n", "64", "-adversary", adv, "-pool", "1024")
		if !strings.Contains(out, "delivery:") {
			t.Fatalf("adversary %s produced no report:\n%s", adv, out)
		}
	}
}

func TestCLIUnknownAdversary(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-adversary", "nope"}, &buf); err == nil {
		t.Fatal("unknown adversary must error")
	}
}

func TestCLIUnknownEngine(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-engine", "warp"}, &buf); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestCLIActorsEngine(t *testing.T) {
	out := runCLI(t, "-n", "64", "-engine", "actors", "-adversary", "null", "-pool", "0")
	if !strings.Contains(out, "informed (100.0%)") {
		t.Fatalf("actors engine output:\n%s", out)
	}
}

func TestCLIPhasesAndTraceText(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-phases", "-trace", "text")
	if !strings.Contains(out, "per-phase trace:") || !strings.Contains(out, "run complete") {
		t.Fatalf("trace output incomplete:\n%s", out)
	}
}

func TestCLITraceJSON(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-trace", "json")
	if !strings.Contains(out, `"event":"phase_start"`) {
		t.Fatalf("json trace missing:\n%s", out)
	}
}

func TestCLIBudgetsAndDecoy(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-budgets", "-decoy")
	if !strings.Contains(out, "delivery:") {
		t.Fatalf("budgeted decoy run:\n%s", out)
	}
}

func TestCLIPaperParams(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-paper")
	if !strings.Contains(out, "k2-exact") {
		t.Fatalf("paper mode must use Figure 1:\n%s", out)
	}
}
